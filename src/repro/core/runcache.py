"""Persistent on-disk run cache.

Every (application, scale, configuration) point is deterministic, so its
:class:`~repro.core.metrics.RunResult` can be memoized *across* processes
and invocations — the expensive full-grid regenerations share one cache
on disk, layered *under* the in-memory dicts in :mod:`repro.core.sweeps`.

Keys are a SHA-256 content hash over the application name, the problem
scale, the RNG seed, the full :class:`~repro.core.config.ClusterConfig`
(architecture *and* communication parameters), and :data:`MODEL_VERSION`.
Records are single pickle files under the cache root (default
``results/.runcache/``; override with ``REPRO_CACHE_DIR``; disable the
whole layer with ``REPRO_DISK_CACHE=0``).

Integrity
---------
A record is an *envelope*: the pickled result payload plus a SHA-256
checksum over those exact bytes.  Every load verifies the checksum, so a
half-written, bit-rotted, or truncated file can never hand back a wrong
result — it is **quarantined** (moved to ``<root>/quarantine/``, logged,
counted) and treated as a cache miss, never a crash.  Records written
under an older :data:`MODEL_VERSION` or envelope format are *stale*, not
corrupt: they miss silently and are left in place.  Writes are atomic
(temp file + ``os.replace``) and serialized by an advisory lock
(:mod:`repro.core.fslock`) so concurrent sweeps on one machine do not
interleave; ``python -m repro cache verify`` audits the whole directory.

**Cache-coherence rule:** the cache cannot observe changes to the
simulator's cost model, only to the configuration.  Whenever a change
alters what a simulation *returns* for the same configuration — a cost
constant, a protocol fix, a new time category — bump :data:`MODEL_VERSION`
so every stale entry misses.  ``python -m repro cache clear`` purges the
directory outright.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pathlib
import pickle
import tempfile
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.fslock import file_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ClusterConfig
    from repro.core.metrics import RunResult

logger = logging.getLogger("repro.runcache")

#: bump on ANY change that alters simulation results for a fixed config
#: (cost-model constants, protocol behaviour, metrics definitions).
#: 2: fault injection / reliable delivery (FaultParams on ClusterConfig).
#: 3: observability layer — RunResult grows resource_busy/phase_marks/
#:    metrics_* fields, so pre-3 pickles lack attributes new code reads.
#: 4: decorrelated jitter on the retransmit backoff (FaultParams.
#:    retry_jitter, default 0.5) — retransmit timing under injected
#:    faults changes for the same seed.
MODEL_VERSION = 4

#: on-disk record layout version (the pickle envelope, not the model).
#: 2: checksummed envelope — the result is pickled separately into a
#:    ``payload`` bytes field guarded by a ``sha256`` over those bytes.
_FORMAT_VERSION = 2

_MAGIC = "repro-runcache"

DEFAULT_CACHE_DIR = os.path.join("results", ".runcache")

QUARANTINE_DIRNAME = "quarantine"

_LOCK_FILENAME = ".lock"

#: Cache write guard installed by the distributed sweep fabric
#: (:mod:`repro.core.fabric`).  Called as ``guard(key)`` before every
#: :meth:`DiskCache.put`; raising (``StaleFencingTokenError``) aborts
#: the write, so a worker whose lease expired mid-computation can never
#: clobber its successor's record.  ``None`` = unguarded (default).
_write_guard: Optional[Callable[[str], object]] = None


def set_write_guard(guard: Optional[Callable[[str], object]]) -> None:
    """Install (or clear, with ``None``) the process-wide cache write guard."""
    global _write_guard
    _write_guard = guard


def content_key(app: str, scale: float, config: "ClusterConfig") -> str:
    """Stable content hash identifying one simulation point.

    The hash covers everything that determines the result — app name,
    scale, seed, and every field of the config (nested ``ArchParams`` and
    ``CommParams`` included) — plus :data:`MODEL_VERSION`.  It is stable
    across processes and Python invocations (no reliance on ``hash()``).
    """
    payload = {
        "model_version": MODEL_VERSION,
        "app": app,
        "scale": repr(float(scale)),
        "seed": config.seed,
        "config": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of pickled :class:`RunResult` records keyed by content hash.

    Writes are atomic (temp file + ``os.replace``) under an advisory
    directory lock; loads verify a per-record checksum and quarantine
    anything unreadable (see the module docstring's integrity contract).
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        #: corrupt records moved aside by this process
        self.quarantined = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / QUARANTINE_DIRNAME

    @property
    def _lock_path(self) -> pathlib.Path:
        return self.root / _LOCK_FILENAME

    # ------------------------------------------------------------------ #
    # record I/O
    # ------------------------------------------------------------------ #
    @staticmethod
    def _classify(path: pathlib.Path) -> Tuple[str, Optional["RunResult"]]:
        """Load one record file: ``("ok", result)``, ``("stale", None)``,
        ``("corrupt", None)`` or ``("missing", None)``.

        *Stale* means a well-formed envelope from another model/format
        version — valid history, not damage.  Everything else unreadable
        is *corrupt*.
        """
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
        except OSError:
            return "missing", None
        except Exception:
            # Unpickling arbitrary corrupt bytes can raise nearly anything
            # (UnpicklingError, EOFError, ValueError, AttributeError,
            # ImportError...).
            return "corrupt", None
        if not isinstance(envelope, dict) or envelope.get("magic") != _MAGIC:
            return "corrupt", None
        if (
            envelope.get("format") != _FORMAT_VERSION
            or envelope.get("model_version") != MODEL_VERSION
        ):
            return "stale", None
        payload = envelope.get("payload")
        if not isinstance(payload, bytes):
            return "corrupt", None
        if hashlib.sha256(payload).hexdigest() != envelope.get("sha256"):
            return "corrupt", None
        try:
            result = pickle.loads(payload)
        except Exception:
            return "corrupt", None
        return "ok", result

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt record aside so it can never poison a run again."""
        dest = self.quarantine_dir / path.name
        try:
            with file_lock(self._lock_path):
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, dest)
        except OSError:
            # Racing quarantiners/cleaners: losing the race is fine, the
            # record is gone either way.
            return
        self.quarantined += 1
        logger.warning(
            "quarantined corrupt run-cache record %s -> %s "
            "(checksum/unpickle failure; treated as a cache miss)",
            path.name,
            dest,
        )

    def get(self, key: str) -> Optional["RunResult"]:
        path = self._path(key)
        status, result = self._classify(path)
        if status == "ok":
            self.hits += 1
            return result
        if status == "corrupt":
            self._quarantine(path)
        self.misses += 1
        return None

    def put(self, key: str, result: "RunResult") -> None:
        if _write_guard is not None:
            _write_guard(key)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        record = {
            "magic": _MAGIC,
            "format": _FORMAT_VERSION,
            "model_version": MODEL_VERSION,
            "app": result.app_name,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with file_lock(self._lock_path):
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------------------ #
    def entries(self) -> list:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def verify(self) -> Dict[str, object]:
        """Audit every record: checksum-verify, quarantine the corrupt.

        Returns counts per disposition plus the quarantined file names;
        used by ``python -m repro cache verify``.
        """
        ok = stale = 0
        quarantined: List[str] = []
        for path in self.entries():
            status, _ = self._classify(path)
            if status == "ok":
                ok += 1
            elif status == "stale":
                stale += 1
            elif status == "corrupt":
                self._quarantine(path)
                quarantined.append(path.name)
        return {
            "root": str(self.root),
            "ok": ok,
            "stale": stale,
            "quarantined": len(quarantined),
            "quarantined_files": quarantined,
            "quarantine_dir": str(self.quarantine_dir),
        }

    def stats(self) -> Dict[str, object]:
        files = self.entries()
        in_quarantine = (
            len(list(self.quarantine_dir.glob("*.pkl")))
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "root": str(self.root),
            "entries": len(files),
            "bytes": sum(p.stat().st_size for p in files),
            "model_version": MODEL_VERSION,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_quarantined": self.quarantined,
            "in_quarantine": in_quarantine,
        }

    def clear(self) -> int:
        """Delete every record (incl. quarantine and stray temp files);
        returns the count of cache records removed."""
        removed = 0
        if self.root.is_dir():
            for p in list(self.root.glob("*.pkl")) + list(self.root.glob("*.tmp")):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        if self.quarantine_dir.is_dir():
            for p in self.quarantine_dir.glob("*.pkl"):
                try:
                    p.unlink()
                except OSError:
                    pass
        return removed


# --------------------------------------------------------------------- #
# process-wide default cache, configured from the environment
# --------------------------------------------------------------------- #
_disk_cache: Optional[DiskCache] = None
_configured = False


def disk_cache() -> Optional[DiskCache]:
    """The process-wide cache, or ``None`` when ``REPRO_DISK_CACHE=0``."""
    global _disk_cache, _configured
    if not _configured:
        if os.environ.get("REPRO_DISK_CACHE", "1") not in ("0", "false", "no"):
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
            _disk_cache = DiskCache(root)
        else:
            _disk_cache = None
        _configured = True
    return _disk_cache


def reset_disk_cache() -> None:
    """Forget the configured cache so the next use re-reads the environment
    (tests point ``REPRO_CACHE_DIR`` at a temp dir and call this)."""
    global _disk_cache, _configured
    _disk_cache = None
    _configured = False
