"""Persistent on-disk run cache.

Every (application, scale, configuration) point is deterministic, so its
:class:`~repro.core.metrics.RunResult` can be memoized *across* processes
and invocations — the expensive full-grid regenerations share one cache
on disk, layered *under* the in-memory dicts in :mod:`repro.core.sweeps`.

Keys are a SHA-256 content hash over the application name, the problem
scale, the RNG seed, the full :class:`~repro.core.config.ClusterConfig`
(architecture *and* communication parameters), and :data:`MODEL_VERSION`.
Records are single pickle files under the cache root (default
``results/.runcache/``; override with ``REPRO_CACHE_DIR``; disable the
whole layer with ``REPRO_DISK_CACHE=0``).

**Cache-coherence rule:** the cache cannot observe changes to the
simulator's cost model, only to the configuration.  Whenever a change
alters what a simulation *returns* for the same configuration — a cost
constant, a protocol fix, a new time category — bump :data:`MODEL_VERSION`
so every stale entry misses.  ``python -m repro cache clear`` purges the
directory outright.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ClusterConfig
    from repro.core.metrics import RunResult

#: bump on ANY change that alters simulation results for a fixed config
#: (cost-model constants, protocol behaviour, metrics definitions).
#: 2: fault injection / reliable delivery (FaultParams on ClusterConfig).
#: 3: observability layer — RunResult grows resource_busy/phase_marks/
#:    metrics_* fields, so pre-3 pickles lack attributes new code reads.
MODEL_VERSION = 3

#: on-disk record layout version (the pickle envelope, not the model)
_FORMAT_VERSION = 1

_MAGIC = "repro-runcache"

DEFAULT_CACHE_DIR = os.path.join("results", ".runcache")


def content_key(app: str, scale: float, config: "ClusterConfig") -> str:
    """Stable content hash identifying one simulation point.

    The hash covers everything that determines the result — app name,
    scale, seed, and every field of the config (nested ``ArchParams`` and
    ``CommParams`` included) — plus :data:`MODEL_VERSION`.  It is stable
    across processes and Python invocations (no reliance on ``hash()``).
    """
    payload = {
        "model_version": MODEL_VERSION,
        "app": app,
        "scale": repr(float(scale)),
        "seed": config.seed,
        "config": dataclasses.asdict(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of pickled :class:`RunResult` records keyed by content hash.

    Writes are atomic (temp file + ``os.replace``) so concurrent workers
    racing on the same point cannot leave a torn record; unreadable or
    stale-format records are treated as misses.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional["RunResult"]:
        try:
            with open(self._path(key), "rb") as fh:
                record = pickle.load(fh)
        except OSError:
            self.misses += 1
            return None
        except Exception:
            # Unpickling arbitrary corrupt bytes can raise nearly anything
            # (UnpicklingError, EOFError, ValueError, AttributeError,
            # ImportError...); any unreadable record is simply a miss.
            self.misses += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("magic") != _MAGIC
            or record.get("format") != _FORMAT_VERSION
            or record.get("model_version") != MODEL_VERSION
        ):
            self.misses += 1
            return None
        self.hits += 1
        return record["result"]

    def put(self, key: str, result: "RunResult") -> None:
        record = {
            "magic": _MAGIC,
            "format": _FORMAT_VERSION,
            "model_version": MODEL_VERSION,
            "app": result.app_name,
            "result": result,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    def entries(self) -> list:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def stats(self) -> Dict[str, object]:
        files = self.entries()
        return {
            "root": str(self.root),
            "entries": len(files),
            "bytes": sum(p.stat().st_size for p in files),
            "model_version": MODEL_VERSION,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every record (and stray temp file); returns count removed."""
        removed = 0
        if self.root.is_dir():
            for p in list(self.root.glob("*.pkl")) + list(self.root.glob("*.tmp")):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# --------------------------------------------------------------------- #
# process-wide default cache, configured from the environment
# --------------------------------------------------------------------- #
_disk_cache: Optional[DiskCache] = None
_configured = False


def disk_cache() -> Optional[DiskCache]:
    """The process-wide cache, or ``None`` when ``REPRO_DISK_CACHE=0``."""
    global _disk_cache, _configured
    if not _configured:
        if os.environ.get("REPRO_DISK_CACHE", "1") not in ("0", "false", "no"):
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
            _disk_cache = DiskCache(root)
        else:
            _disk_cache = None
        _configured = True
    return _disk_cache


def reset_disk_cache() -> None:
    """Forget the configured cache so the next use re-reads the environment
    (tests point ``REPRO_CACHE_DIR`` at a temp dir and call this)."""
    global _disk_cache, _configured
    _disk_cache = None
    _configured = False
