"""Run results: time breakdowns, speedups, normalized event rates.

Definitions follow the paper:

* **speedup** — uniprocessor execution time divided by parallel time;
* **ideal speedup** — uniprocessor time over the maximum per-processor
  (compute + local cache stall) time, i.e. all communication and
  synchronization costs zeroed (Figure 1's "ideal");
* event rates (Table 2, Figures 3-4) are reported *per processor per
  million compute cycles*, averaged over processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.arch.processor import TIME_CATEGORIES, ProcessorStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.base import AppTrace
    from repro.core.config import ClusterConfig
    from repro.protocol.base import ProtocolCounters


@dataclass
class RunResult:
    """Everything measured by one simulation run."""

    app_name: str
    problem: str
    config: "ClusterConfig"
    #: wall-clock parallel execution time in cycles
    total_cycles: int
    #: uniprocessor execution time from the workload model
    serial_cycles: int
    #: per-processor stats (time categories + counters)
    proc_stats: List[ProcessorStats]
    #: cluster-wide protocol counters
    counters: "ProtocolCounters"
    #: maximum per-processor uncontended compute+stall cycles, straight
    #: from the workload model (used for the ideal speedup; the measured
    #: stats include bus-contention inflation, which ideal must not)
    uncontended_busy_max: int = 0
    #: extra run metadata (network bytes, NI stats, ...)
    meta: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # speedups
    # ------------------------------------------------------------------ #
    @property
    def n_procs(self) -> int:
        return len(self.proc_stats)

    @property
    def speedup(self) -> float:
        return self.serial_cycles / max(1, self.total_cycles)

    @property
    def ideal_speedup(self) -> float:
        busiest = self.uncontended_busy_max
        if not busiest:  # fall back to measured busy time
            busiest = max(
                s.time["compute"] + s.time["local_stall"] for s in self.proc_stats
            )
        return self.serial_cycles / max(1, busiest)

    def slowdown_vs(self, other: "RunResult") -> float:
        """Fractional slowdown of *this* run relative to ``other``
        (positive = this run is slower), as in Table 3."""
        return (other.speedup - self.speedup) / other.speedup

    # ------------------------------------------------------------------ #
    # breakdowns
    # ------------------------------------------------------------------ #
    def time_breakdown(self) -> Dict[str, int]:
        """Aggregate cycles per category across processors."""
        total = {cat: 0 for cat in TIME_CATEGORIES}
        for s in self.proc_stats:
            for cat in TIME_CATEGORIES:
                total[cat] += s.time[cat]
        return total

    def breakdown_fractions(self) -> Dict[str, float]:
        """Category shares of total busy+wait time."""
        bd = self.time_breakdown()
        denom = max(1, sum(bd.values()))
        return {cat: cycles / denom for cat, cycles in bd.items()}

    # ------------------------------------------------------------------ #
    # normalized event rates (Table 2 / Figures 3-4 units)
    # ------------------------------------------------------------------ #
    @property
    def mean_compute_cycles(self) -> float:
        return sum(s.time["compute"] for s in self.proc_stats) / self.n_procs

    def per_proc_per_mcycle(self, counter: str) -> float:
        """Counter events per processor per million compute cycles."""
        total = sum(s.get_count(counter) for s in self.proc_stats)
        mcycles = max(1e-9, self.mean_compute_cycles / 1e6)
        return total / self.n_procs / mcycles

    def cluster_rate_per_mcycle(self, value: float) -> float:
        mcycles = max(1e-9, self.mean_compute_cycles / 1e6)
        return value / self.n_procs / mcycles

    @property
    def messages_per_proc_per_mcycle(self) -> float:
        return self.per_proc_per_mcycle("messages_sent")

    @property
    def mbytes_per_proc_per_mcycle(self) -> float:
        total = sum(s.get_count("bytes_sent") for s in self.proc_stats)
        mcycles = max(1e-9, self.mean_compute_cycles / 1e6)
        return total / (1 << 20) / self.n_procs / mcycles

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        bd = self.breakdown_fractions()
        parts = ", ".join(f"{k}={v:.0%}" for k, v in bd.items() if v >= 0.005)
        return (
            f"{self.app_name:>14}  speedup={self.speedup:5.2f} "
            f"(ideal {self.ideal_speedup:5.2f})  T={self.total_cycles:>12} cyc  "
            f"[{parts}]"
        )


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (the paper's metric for combining msgs x bytes)."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
