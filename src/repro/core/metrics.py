"""Run results: time breakdowns, speedups, normalized event rates.

Definitions follow the paper:

* **speedup** — uniprocessor execution time divided by parallel time;
* **ideal speedup** — uniprocessor time over the maximum per-processor
  (compute + local cache stall) time, i.e. all communication and
  synchronization costs zeroed (Figure 1's "ideal");
* event rates (Table 2, Figures 3-4) are reported *per processor per
  million compute cycles*, averaged over processors.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.arch.processor import TIME_CATEGORIES, ProcessorStats

#: time categories during which a processor is *busy* (occupying its
#: pipeline) as opposed to blocked waiting on a remote event
BUSY_CATEGORIES = ("compute", "local_stall", "handler", "overhead", "protocol")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.base import AppTrace
    from repro.core.config import ClusterConfig
    from repro.protocol.base import ProtocolCounters


@dataclass
class RunResult:
    """Everything measured by one simulation run."""

    app_name: str
    problem: str
    config: "ClusterConfig"
    #: wall-clock parallel execution time in cycles
    total_cycles: int
    #: uniprocessor execution time from the workload model
    serial_cycles: int
    #: per-processor stats (time categories + counters)
    proc_stats: List[ProcessorStats]
    #: cluster-wide protocol counters
    counters: "ProtocolCounters"
    #: maximum per-processor uncontended compute+stall cycles, straight
    #: from the workload model (used for the ideal speedup; the measured
    #: stats include bus-contention inflation, which ideal must not)
    uncontended_busy_max: int = 0
    #: extra run metadata (network bytes, NI stats, ...)
    meta: Dict[str, float] = field(default_factory=dict)
    #: per-resource busy cycles (memory buses, I/O buses, NI cores, links,
    #: CPUs), harvested in one end-of-run walk — always populated
    resource_busy: Dict[str, int] = field(default_factory=dict)
    #: phase marks from the metrics registry: (time, label, cumulative
    #: per-category cycles); empty unless the run was profiled
    phase_marks: List[Tuple[int, str, Dict[str, int]]] = field(default_factory=list)
    #: metrics-registry event counters (per-message-kind, per-tag, ...)
    metrics_counters: Dict[str, int] = field(default_factory=dict)
    #: metrics-registry cycle accumulators (per-handler-tag hotspots)
    metrics_cycles: Dict[str, int] = field(default_factory=dict)
    #: queue-depth summaries: name -> {mean, max, samples}
    queue_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: happens-before oracle findings (repro.verify.ConsistencyViolation);
    #: empty unless the run had verification enabled and an invariant broke
    violations: List[Any] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # speedups
    # ------------------------------------------------------------------ #
    @property
    def n_procs(self) -> int:
        return len(self.proc_stats)

    @property
    def speedup(self) -> float:
        return self.serial_cycles / max(1, self.total_cycles)

    @property
    def ideal_speedup(self) -> float:
        busiest = self.uncontended_busy_max
        if not busiest:  # fall back to measured busy time
            busiest = max(
                s.time["compute"] + s.time["local_stall"] for s in self.proc_stats
            )
        return self.serial_cycles / max(1, busiest)

    def with_meta(self, **extra: float) -> "RunResult":
        """Copy of this result with extra :attr:`meta` keys.

        Used for presentation-layer annotations — e.g. resume provenance
        (``python -m repro resume`` tags exported records with
        ``resume.*`` keys) — without mutating the original, so cached
        records and bit-identical-replay guarantees are untouched.
        """
        return dataclasses.replace(self, meta={**self.meta, **extra})

    def slowdown_vs(self, other: "RunResult") -> float:
        """Fractional slowdown of *this* run relative to ``other``
        (positive = this run is slower), as in Table 3."""
        return (other.speedup - self.speedup) / other.speedup

    # ------------------------------------------------------------------ #
    # breakdowns
    # ------------------------------------------------------------------ #
    def time_breakdown(self) -> Dict[str, int]:
        """Aggregate cycles per category across processors."""
        total = {cat: 0 for cat in TIME_CATEGORIES}
        for s in self.proc_stats:
            for cat in TIME_CATEGORIES:
                total[cat] += s.time[cat]
        return total

    def breakdown_fractions(self) -> Dict[str, float]:
        """Category shares of total busy+wait time."""
        bd = self.time_breakdown()
        denom = max(1, sum(bd.values()))
        return {cat: cycles / denom for cat, cycles in bd.items()}

    # ------------------------------------------------------------------ #
    # resource occupancy / phase attribution (observability layer)
    # ------------------------------------------------------------------ #
    def utilization(self) -> Dict[str, float]:
        """Fraction of the run each resource spent busy, by resource name.

        Computed from :attr:`resource_busy` over the parallel execution
        time; a saturated resource reads ~1.0 (e.g. "NI 87% occupied,
        I/O bus 34%" — the paper's bottleneck-shift evidence).  Values
        are clamped to 1.0: an analytic server's backlog may drain past
        the last application event.
        """
        span = max(1, self.total_cycles)
        return {
            name: min(1.0, busy / span)
            for name, busy in self.resource_busy.items()
        }

    def phase_breakdown(self) -> List[Dict[str, object]]:
        """Per-phase (barrier-epoch) cost breakdown.

        Differences adjacent :attr:`phase_marks` into one record per
        epoch: ``{"label", "start", "end", "cycles", "fractions"}`` where
        ``fractions`` is normalized over the epoch's own total (summing
        to 1.0), matching the paper's stacked-bar figures.  Epochs in
        which no cycles were charged are dropped.  Empty unless the run
        was profiled with a metrics registry.
        """
        phases: List[Dict[str, object]] = []
        prev_time = 0
        prev_cum: Dict[str, int] = {cat: 0 for cat in TIME_CATEGORIES}
        for time, label, cum in self.phase_marks:
            delta = {
                cat: cum.get(cat, 0) - prev_cum.get(cat, 0) for cat in TIME_CATEGORIES
            }
            total = sum(delta.values())
            if total > 0:
                phases.append(
                    {
                        "label": label,
                        "start": prev_time,
                        "end": time,
                        "cycles": delta,
                        "fractions": {cat: c / total for cat, c in delta.items()},
                    }
                )
            prev_time, prev_cum = time, cum
        return phases

    def hotspots(self, top: int = 10) -> List[Tuple[str, int, int]]:
        """Top-``top`` protocol hotspots as ``(name, cycles, count)``.

        Ranks the metrics registry's cycle accumulators (handler tags,
        diff creation, update drains) by total cycles spent.
        """
        ranked = sorted(self.metrics_cycles.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            (name, cycles, self.metrics_counters.get(f"{name}.count", 0))
            for name, cycles in ranked[:top]
        ]

    # ------------------------------------------------------------------ #
    # normalized event rates (Table 2 / Figures 3-4 units)
    # ------------------------------------------------------------------ #
    @property
    def mean_compute_cycles(self) -> float:
        return sum(s.time["compute"] for s in self.proc_stats) / self.n_procs

    def per_proc_per_mcycle(self, counter: str) -> float:
        """Counter events per processor per million compute cycles."""
        total = sum(s.get_count(counter) for s in self.proc_stats)
        mcycles = max(1e-9, self.mean_compute_cycles / 1e6)
        return total / self.n_procs / mcycles

    def cluster_rate_per_mcycle(self, value: float) -> float:
        mcycles = max(1e-9, self.mean_compute_cycles / 1e6)
        return value / self.n_procs / mcycles

    @property
    def messages_per_proc_per_mcycle(self) -> float:
        return self.per_proc_per_mcycle("messages_sent")

    @property
    def mbytes_per_proc_per_mcycle(self) -> float:
        total = sum(s.get_count("bytes_sent") for s in self.proc_stats)
        mcycles = max(1e-9, self.mean_compute_cycles / 1e6)
        return total / (1 << 20) / self.n_procs / mcycles

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        bd = self.breakdown_fractions()
        parts = ", ".join(f"{k}={v:.0%}" for k, v in bd.items() if v >= 0.005)
        return (
            f"{self.app_name:>14}  speedup={self.speedup:5.2f} "
            f"(ideal {self.ideal_speedup:5.2f})  T={self.total_cycles:>12} cyc  "
            f"[{parts}]"
        )


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (the paper's metric for combining msgs x bytes)."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
