"""Resource-occupancy metrics registry.

The observability layer mirrors the paper's measurement methodology:
every conclusion in Bilas & Singh rests on *attribution* — execution
time split by category, bottleneck shifts explained by which resource
(host CPU, NI occupancy, I/O bus, link) saturates as a parameter is
swept.  This module provides the collection side:

* :class:`Counter`-style event tallies (:meth:`MetricsRegistry.bump`),
* cycle accumulators for per-tag handler time
  (:meth:`MetricsRegistry.add_cycles` — the "protocol hotspot" data),
* :class:`BusyTracker` union-of-intervals busy/idle trackers (nested or
  simultaneous busy intervals are counted once),
* queue-depth samples (:meth:`MetricsRegistry.sample_queue`),
* phase marks — cumulative time-breakdown snapshots taken at barrier
  episodes, from which :meth:`repro.core.metrics.RunResult.phase_breakdown`
  derives the paper's per-epoch stacked-bar figures.

Cost discipline
---------------
Collection follows the same zero-cost pattern as :mod:`repro.sim.tracing`:
instrumented components hold a ``metrics`` attribute that is ``None`` by
default, so the disabled path is a single attribute check (usually hoisted
out of loops entirely).  Per-resource *busy cycles* are not collected here
at all — the :class:`~repro.sim.resources.FluidQueue` servers already
track them unconditionally, and :func:`repro.core.run.run_simulation`
harvests them in one end-of-run walk, which costs the DES hot loop
nothing.

A registry is *passive*: it never schedules events and never perturbs
simulated time, so enabling metrics cannot change simulation results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class BusyTracker:
    """Union-of-intervals busy-time bookkeeping.

    ``begin``/``end`` calls may nest (one handler interrupting another on
    the same resource) or coincide at the same timestamp (simultaneous
    events); overlapping busy intervals are counted **once**:

    >>> bt = BusyTracker()
    >>> bt.begin(10); bt.begin(10); bt.end(20); bt.end(30)
    >>> bt.busy_cycles
    20
    """

    __slots__ = ("busy_cycles", "intervals", "_depth", "_start")

    def __init__(self) -> None:
        self.busy_cycles: int = 0
        self.intervals: int = 0
        self._depth: int = 0
        self._start: int = 0

    @property
    def active(self) -> bool:
        return self._depth > 0

    def begin(self, now: int) -> None:
        if self._depth == 0:
            self._start = now
        self._depth += 1

    def end(self, now: int) -> None:
        if self._depth <= 0:
            raise RuntimeError("BusyTracker.end() without matching begin()")
        self._depth -= 1
        if self._depth == 0:
            if now < self._start:
                raise ValueError(f"interval ends at {now} before start {self._start}")
            self.busy_cycles += now - self._start
            self.intervals += 1

    def busy_as_of(self, now: int) -> int:
        """Busy cycles including any still-open interval up to ``now``."""
        busy = self.busy_cycles
        if self._depth > 0:
            busy += now - self._start
        return busy


class QueueDepthStat:
    """Running max/mean of a sampled queue depth."""

    __slots__ = ("samples", "total", "max")

    def __init__(self) -> None:
        self.samples: int = 0
        self.total: float = 0.0
        self.max: float = 0.0

    def sample(self, depth: float) -> None:
        self.samples += 1
        self.total += depth
        if depth > self.max:
            self.max = depth

    @property
    def mean(self) -> float:
        return self.total / self.samples if self.samples else 0.0


#: one phase mark: (simulated time, label, cumulative per-category cycles)
PhaseMark = Tuple[int, str, Dict[str, int]]


class MetricsRegistry:
    """Collects counters, cycle accumulators, busy trackers and phase marks.

    Components report into the registry only when one is installed (their
    ``metrics`` attribute is non-``None``); a registry can additionally be
    soft-disabled via :attr:`enabled`, which every reporting method checks
    first so a cached reference costs one attribute test.
    """

    __slots__ = ("enabled", "counters", "cycles", "busy", "queue_depths", "phase_marks")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.cycles: Dict[str, int] = {}
        self.busy: Dict[str, BusyTracker] = {}
        self.queue_depths: Dict[str, QueueDepthStat] = {}
        self.phase_marks: List[PhaseMark] = []

    # ------------------------------------------------------------------ #
    # event counters and cycle accumulators
    # ------------------------------------------------------------------ #
    def bump(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def add_cycles(self, name: str, cycles: int) -> None:
        if not self.enabled:
            return
        self.cycles[name] = self.cycles.get(name, 0) + int(cycles)

    # ------------------------------------------------------------------ #
    # busy intervals
    # ------------------------------------------------------------------ #
    def busy_tracker(self, name: str) -> BusyTracker:
        tracker = self.busy.get(name)
        if tracker is None:
            tracker = self.busy[name] = BusyTracker()
        return tracker

    def begin_busy(self, name: str, now: int) -> None:
        if not self.enabled:
            return
        self.busy_tracker(name).begin(now)

    def end_busy(self, name: str, now: int) -> None:
        if not self.enabled:
            return
        self.busy_tracker(name).end(now)

    # ------------------------------------------------------------------ #
    # queue depths
    # ------------------------------------------------------------------ #
    def sample_queue(self, name: str, depth: float) -> None:
        if not self.enabled:
            return
        stat = self.queue_depths.get(name)
        if stat is None:
            stat = self.queue_depths[name] = QueueDepthStat()
        stat.sample(depth)

    # ------------------------------------------------------------------ #
    # phase (barrier-epoch) segmentation
    # ------------------------------------------------------------------ #
    def phase_mark(self, now: int, label: str, cumulative: Dict[str, int]) -> None:
        """Record a phase boundary at ``now``.

        ``cumulative`` is the cluster-wide per-category cycle breakdown
        *so far* (a snapshot, not a delta); consumers difference adjacent
        marks to recover per-phase costs.
        """
        if not self.enabled:
            return
        self.phase_marks.append((int(now), label, dict(cumulative)))

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def busy_cycles(self, as_of: Optional[int] = None) -> Dict[str, int]:
        """Per-tracker busy cycles (closing open intervals at ``as_of``)."""
        if as_of is None:
            return {name: bt.busy_cycles for name, bt in self.busy.items()}
        return {name: bt.busy_as_of(as_of) for name, bt in self.busy.items()}

    def queue_summary(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"mean": stat.mean, "max": stat.max, "samples": float(stat.samples)}
            for name, stat in self.queue_depths.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(enabled={self.enabled}, "
            f"counters={len(self.counters)}, busy={len(self.busy)}, "
            f"phases={len(self.phase_marks)})"
        )
