"""Parameter-sweep helpers with per-process run caching.

Every experiment is some grid of (application x configuration) runs; the
cache keeps shared points (e.g. the achievable baseline) from being
simulated repeatedly within one process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps import APP_ORDER, get_app
from repro.apps.base import AppTrace
from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult
from repro.core.run import run_simulation

_RUN_CACHE: Dict[Tuple, RunResult] = {}
_TRACE_CACHE: Dict[Tuple, AppTrace] = {}


def clear_caches() -> None:
    _RUN_CACHE.clear()
    _TRACE_CACHE.clear()


def cached_trace(name: str, scale: float, page_size: int, seed: int) -> AppTrace:
    key = (name, scale, page_size, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = _TRACE_CACHE[key] = get_app(
            name, n_procs=16, page_size=page_size, scale=scale, seed=seed
        )
    return trace


def cached_run(name: str, scale: float, config: ClusterConfig) -> RunResult:
    """Run (or fetch) one (app, config) point.

    The trace is regenerated when the configuration's page size changes
    (page numbers depend on it); clustering changes reuse the same trace.
    """
    key = (name, scale, config)
    result = _RUN_CACHE.get(key)
    if result is None:
        trace = cached_trace(name, scale, config.comm.page_size, config.seed)
        result = _RUN_CACHE[key] = run_simulation(trace, config)
    return result


def sweep_comm_param(
    app_name: str,
    param: str,
    values: Sequence,
    base: Optional[ClusterConfig] = None,
    scale: float = 1.0,
) -> List[RunResult]:
    """Vary one CommParams field over ``values`` (all else achievable)."""
    base = base if base is not None else ClusterConfig()
    return [
        cached_run(app_name, scale, base.with_comm(**{param: v})) for v in values
    ]


def run_apps(
    config: Optional[ClusterConfig] = None,
    apps: Optional[Iterable[str]] = None,
    scale: float = 1.0,
) -> Dict[str, RunResult]:
    """One run per application under ``config``."""
    config = config if config is not None else ClusterConfig()
    names = list(apps) if apps is not None else list(APP_ORDER)
    return {name: cached_run(name, scale, config) for name in names}


def max_slowdown(results: Sequence[RunResult]) -> float:
    """Fractional slowdown between the best and worst speedup in a sweep
    (paper Table 3; negative would mean the 'worst' value helped)."""
    speedups = [r.speedup for r in results]
    return (speedups[0] - speedups[-1]) / speedups[0]


def slowdown_between(first: RunResult, last: RunResult) -> float:
    return (first.speedup - last.speedup) / first.speedup
