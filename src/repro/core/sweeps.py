"""Parameter-sweep helpers with layered run caching.

Every experiment is some grid of (application x configuration) runs; two
cache layers keep shared points (e.g. the achievable baseline) from being
simulated repeatedly:

* in-memory dicts (this module) — hits within one process;
* the persistent disk cache (:mod:`repro.core.runcache`) — hits across
  processes and invocations, shared with pool workers.

Grids go through :func:`repro.core.executor.run_points` to use several
cores; the helpers here accept a ``jobs`` argument and forward to it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps import APP_ORDER, get_app
from repro.apps.base import AppTrace
from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult
from repro.core.run import run_simulation

_RUN_CACHE: Dict[Tuple, RunResult] = {}
_TRACE_CACHE: Dict[Tuple, AppTrace] = {}


def clear_caches(disk: bool = False) -> None:
    """Drop the in-memory run/trace caches; ``disk=True`` also purges the
    persistent cache directory.

    The disk cache is keyed on :data:`repro.core.runcache.MODEL_VERSION`;
    bump that constant on any cost-model change instead of relying on a
    manual clear (see the cache-coherence rule in that module).
    """
    _RUN_CACHE.clear()
    _TRACE_CACHE.clear()
    from repro.core import fidelity as _fidelity

    _fidelity.clear_caches()
    if disk:
        cache = runcache.disk_cache()
        if cache is not None:
            cache.clear()


def cached_trace(name: str, scale: float, page_size: int, seed: int) -> AppTrace:
    key = (name, scale, page_size, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = _TRACE_CACHE[key] = get_app(
            name, n_procs=16, page_size=page_size, scale=scale, seed=seed
        )
    return trace


def cached_lookup(
    name: str, scale: float, config: ClusterConfig
) -> Optional[RunResult]:
    """Fetch one point from the cache layers without simulating.

    A disk hit is promoted into the in-memory cache.  Returns ``None``
    on a full miss.
    """
    key = (name, scale, config)
    result = _RUN_CACHE.get(key)
    if result is not None:
        return result
    disk = runcache.disk_cache()
    if disk is not None:
        result = disk.get(runcache.content_key(name, scale, config))
        if result is not None:
            _RUN_CACHE[key] = result
    return result


def cache_store(
    name: str,
    scale: float,
    config: ClusterConfig,
    result: RunResult,
    disk: bool = True,
) -> None:
    """Install a computed point into the cache layers.

    ``disk=False`` skips the persistent layer (used when the record is
    known to be on disk already, e.g. written by the pool worker that
    computed it)."""
    _RUN_CACHE[(name, scale, config)] = result
    if disk:
        cache = runcache.disk_cache()
        if cache is not None:
            cache.put(runcache.content_key(name, scale, config), result)


def cached_run(name: str, scale: float, config: ClusterConfig) -> RunResult:
    """Run (or fetch) one (app, config) point.

    The trace is regenerated when the configuration's page size changes
    (page numbers depend on it); clustering changes reuse the same trace.
    """
    result = cached_lookup(name, scale, config)
    if result is None:
        trace = cached_trace(name, scale, config.comm.page_size, config.seed)
        result = run_simulation(trace, config)
        cache_store(name, scale, config, result)
    return result


def sweep_comm_param(
    app_name: str,
    param: str,
    values: Sequence,
    base: Optional[ClusterConfig] = None,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    checkpoint=None,
    fidelity: Optional[str] = None,
) -> List[RunResult]:
    """Vary one CommParams field over ``values`` (all else achievable).

    ``checkpoint`` (a sweep name or :class:`~repro.core.checkpoint.
    SweepCheckpoint`) journals each point for crash-safe resume.
    ``fidelity`` selects the serving model (see
    :mod:`repro.core.fidelity`); sweeps are where ``"auto"`` shines —
    the calibration endpoints bracket the swept parameter.
    """
    from repro.core.executor import run_points

    base = base if base is not None else ClusterConfig()
    points = [(app_name, scale, base.with_comm(**{param: v})) for v in values]
    return run_points(points, jobs=jobs, checkpoint=checkpoint, fidelity=fidelity)


def run_apps(
    config: Optional[ClusterConfig] = None,
    apps: Optional[Iterable[str]] = None,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    checkpoint=None,
    fidelity: Optional[str] = None,
) -> Dict[str, RunResult]:
    """One run per application under ``config``."""
    from repro.core.executor import run_points

    config = config if config is not None else ClusterConfig()
    names = list(apps) if apps is not None else list(APP_ORDER)
    results = run_points(
        [(name, scale, config) for name in names],
        jobs=jobs,
        checkpoint=checkpoint,
        fidelity=fidelity,
    )
    return dict(zip(names, results))


def max_slowdown(results: Sequence[RunResult]) -> float:
    """Fractional slowdown between the best and worst speedup in a sweep
    (paper Table 3).  Computed from ``max()``/``min()`` over the whole
    sweep, so the value does not depend on the order the points were
    listed in; by construction it is non-negative.  For the signed,
    endpoint-oriented quantity ("did the nominally worst value actually
    help?") use :func:`slowdown_between` on explicit endpoints."""
    speedups = [r.speedup for r in results]
    best, worst = max(speedups), min(speedups)
    return (best - worst) / best


def slowdown_between(first: RunResult, last: RunResult) -> float:
    return (first.speedup - last.speedup) / first.speedup
