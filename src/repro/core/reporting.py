"""Plain-text table rendering and structured result export.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and diff-friendly.  The
observability layer adds machine-readable export: one flat record per
:class:`~repro.core.metrics.RunResult` (speedup, time breakdown,
per-resource utilization, phase marks, protocol counters) written as
JSONL or CSV so the paper's stacked-bar/occupancy figures can be rebuilt
from files.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import RunResult


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table.

    >>> print(format_table(["app", "speedup"], [["fft", 4.5]]))
    app  speedup
    ---  -------
    fft     4.50
    """
    cells: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(items: Sequence[str], pad_left_from: int = 1) -> str:
        parts = []
        for i, item in enumerate(items):
            if i == 0:
                parts.append(item.ljust(widths[i]))
            else:
                parts.append(item.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(render_row(list(headers)))
    lines.append("  ".join(("-" * w) for w in widths))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """Slowdown formatting matching Table 3 (negative = speedup)."""
    return f"{value * 100:+.1f}%"


# --------------------------------------------------------------------- #
# structured export (observability layer)
# --------------------------------------------------------------------- #
def run_record(result: "RunResult") -> Dict[str, Any]:
    """Flatten one :class:`RunResult` into a JSON-serializable record.

    Everything needed to rebuild the paper's figures offline: identity,
    speedups, the aggregate and per-phase breakdowns, per-resource
    utilization, protocol counters and registry metrics.
    """
    counters = dataclasses.asdict(result.counters)
    extra = counters.pop("extra", {})
    counters.update(extra)
    return {
        "app": result.app_name,
        "problem": result.problem,
        "config": result.config.label(),
        "protocol": result.config.protocol,
        "seed": result.config.seed,
        "n_procs": result.n_procs,
        "total_cycles": result.total_cycles,
        "serial_cycles": result.serial_cycles,
        "speedup": result.speedup,
        "ideal_speedup": result.ideal_speedup,
        "time_breakdown": result.time_breakdown(),
        "breakdown_fractions": result.breakdown_fractions(),
        "utilization": result.utilization(),
        "resource_busy": result.resource_busy,
        "phases": result.phase_breakdown(),
        "hotspots": [
            {"name": name, "cycles": cycles, "count": count}
            for name, cycles, count in result.hotspots()
        ],
        "counters": counters,
        "metrics_counters": result.metrics_counters,
        "queue_stats": result.queue_stats,
        "meta": result.meta,
    }


def write_jsonl(path, results: Iterable["RunResult"]) -> int:
    """Write one JSON line per result; returns the record count."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for result in results:
            fh.write(json.dumps(run_record(result), sort_keys=True) + "\n")
            n += 1
    return n


#: flat columns emitted by :func:`write_csv` (nested export goes to JSONL)
_CSV_SCALAR_KEYS = (
    "app",
    "problem",
    "config",
    "protocol",
    "seed",
    "n_procs",
    "total_cycles",
    "serial_cycles",
    "speedup",
    "ideal_speedup",
)


def write_csv(path, results: Iterable["RunResult"]) -> int:
    """Write a flat CSV: scalar identity columns plus one column per time
    category and per resource's utilization.  Returns the row count."""
    records = [run_record(r) for r in results]
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    cat_keys = sorted({k for r in records for k in r["time_breakdown"]})
    util_keys = sorted({k for r in records for k in r["utilization"]})
    header = (
        list(_CSV_SCALAR_KEYS)
        + [f"cycles.{c}" for c in cat_keys]
        + [f"util.{u}" for u in util_keys]
    )
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for r in records:
            row: List[Any] = [r[k] for k in _CSV_SCALAR_KEYS]
            row += [r["time_breakdown"].get(c, 0) for c in cat_keys]
            row += [round(r["utilization"].get(u, 0.0), 6) for u in util_keys]
            writer.writerow(row)
    return len(records)
