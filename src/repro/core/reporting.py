"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table.

    >>> print(format_table(["app", "speedup"], [["fft", 4.5]]))
    app  speedup
    ---  -------
    fft     4.50
    """
    cells: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(items: Sequence[str], pad_left_from: int = 1) -> str:
        parts = []
        for i, item in enumerate(items):
            if i == 0:
                parts.append(item.ljust(widths[i]))
            else:
                parts.append(item.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(render_row(list(headers)))
    lines.append("  ".join(("-" * w) for w in widths))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """Slowdown formatting matching Table 3 (negative = speedup)."""
    return f"{value * 100:+.1f}%"
