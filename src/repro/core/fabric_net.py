"""Multi-machine fabric transport: a crash-tolerant TCP lease broker.

:mod:`repro.core.fabric` coordinates workers through a filesystem lease
store — perfect on one host, useless across machines.  This module is
the transport PR 7 left room for: a **single-file TCP lease broker**
(`repro fabric broker`) speaking a small length-prefixed JSON protocol,
plus a :class:`RemoteLeaseStore` client that implements the existing
:class:`~repro.core.fabric.LeaseStore` surface, so ``FabricWorker``,
``WriteFence`` and ``FabricCoordinator`` run unchanged over the network.

Design points (the paper's subject is communication parameters; its
fabric should survive bad ones):

Session liveness replaces ``(pid, start time)``
    A remote worker's PID means nothing on the broker host.  The broker
    mints a **session id** per client (``hello``); every RPC refreshes
    the session's server-side TTL deadline.  A lease granted to a
    session is reclaimable when its own TTL passes *or* its session
    goes quiet — SIGSTOP, network partition, and host death all look
    the same: heartbeats stop, the deadline passes, a survivor steals.

Fencing tokens are minted only by the broker
    Every mint is appended (fsync'd) to an **append-only broker
    journal** (``results/.fabric/<sweep>/broker.jsonl``) *before* the
    grant can reach a client, and the monotonic counter survives in
    ``fence.json``.  A SIGKILLed broker restarts from
    ``max(journal, fence)`` and can never reissue a token a client
    might hold — a partitioned-then-healed worker still gets
    :class:`~repro.core.fabric.StaleFencingTokenError` at the existing
    checkpoint/run-cache write guards, never a silent clobber.

The client assumes the network is out to get it
    Every RPC runs under a deadline with **decorrelated-jitter
    exponential backoff** (the ``FaultParams.retry_jitter`` scheme from
    :mod:`repro.net.messaging`, here at the transport layer) behind a
    small **circuit breaker**.  When the breaker opens (broker
    unreachable past the retry budget) the store raises
    :class:`~repro.core.fabric.FabricTransportError`: a worker drains
    and exits cleanly, the coordinator degrades to the filesystem store
    or finishes the grid inline — a vanished broker slows a sweep down,
    it never hangs or corrupts it.

Chaos is a first-class citizen
    :class:`ChaosProxy` is a deterministic in-process TCP proxy that
    drops, delays, black-holes, or half-opens connections on command
    (seeded), so ``tests/core/test_fabric_net_chaos.py`` can SIGKILL
    the broker mid-sweep, SIGSTOP a remote worker past its TTL, and
    partition a worker during renewal — and still assert merged results
    byte-identical to the serial baseline.

Wire format: 4-byte big-endian length prefix + one JSON object.
Requests carry ``op`` (and usually ``sweep`` + ``session``); responses
carry ``ok`` plus either payload fields or ``kind``/``error``.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import random
import socket
import socketserver
import struct
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.checkpoint import validate_sweep_name
from repro.core.fabric import (
    FabricTransportError,
    Lease,
    LeaseStore,
    StaleFencingTokenError,
    fabric_root,
    heartbeat_interval,
)

logger = logging.getLogger("repro.fabric.net")

DEFAULT_PORT = 7341
DEFAULT_SESSION_TTL_S = 15.0

#: largest accepted frame — grids are small; anything bigger is garbage
MAX_FRAME_BYTES = 16 << 20

_LEN = struct.Struct(">I")

_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


class ProtocolError(FabricTransportError):
    """The peer sent bytes that are not a valid protocol frame."""


def parse_addr(addr: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``host:port`` (or bare ``:port``) -> ``(host, port)``."""
    addr = (addr or "").strip()
    host, sep, port_s = addr.rpartition(":")
    if not sep:
        host, port_s = "", addr
    host = host or default_host
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(
            f"invalid fabric address {addr!r}: expected HOST:PORT"
        ) from None
    if not (0 <= port <= 65535):
        raise ValueError(f"invalid fabric port {port} (must be 0..65535)")
    return host, port


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #
def send_frame(sock: socket.socket, obj: dict) -> None:
    data = json.dumps(obj, sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({len(data)} bytes)")
    sock.sendall(_LEN.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> dict:
    header = _recv_exact(sock, _LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"oversized frame announced ({length} bytes)")
    try:
        obj = json.loads(_recv_exact(sock, length))
    except ValueError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame is not a JSON object")
    return obj


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 16))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _validate_id(value: str, what: str) -> str:
    """Worker/session ids land in broker-side file names: keep them tame."""
    if (
        not isinstance(value, str)
        or not value
        or len(value) > 128
        or not set(value) <= _ID_SAFE
    ):
        raise ValueError(f"invalid {what} {value!r}")
    return value


# --------------------------------------------------------------------- #
# broker
# --------------------------------------------------------------------- #
class _JournaledLeaseStore(LeaseStore):
    """Filesystem store whose token mints append to ``broker.jsonl`` first.

    The journal is append-only and fsync'd per record: by the time a
    token can appear in any response, its mint is durable.  Restart
    recovery (:meth:`recover`) fast-forwards ``fence.json`` to
    ``max(journal, fence) + 1`` — a token value a client might hold is
    recorded in at least one of the two, so it is never minted twice.
    """

    def __init__(self, sweep: str, root=None) -> None:
        super().__init__(sweep, root=root)
        self.broker_journal_path = self.dir / "broker.jsonl"

    def _mint_token_locked(self) -> int:
        try:
            state = json.loads(self.fence_path.read_text())
            token = int(state["next_token"])
        except (OSError, ValueError, KeyError, TypeError):
            token = 1
        self.journal_event({"ev": "mint", "token": token})
        self._atomic_write(
            self.fence_path, json.dumps({"next_token": token + 1}) + "\n"
        )
        return token

    def journal_event(self, record: dict) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with open(self.broker_journal_path, "ab") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def journal_records(self) -> List[dict]:
        return self._read_jsonl(self.broker_journal_path)

    def recover(self) -> int:
        """Fast-forward the token counter past every journaled mint."""
        minted = [
            int(r["token"])
            for r in self.journal_records()
            if r.get("ev") == "mint" and isinstance(r.get("token"), int)
        ]
        try:
            fence_next = int(json.loads(self.fence_path.read_text())["next_token"])
        except (OSError, ValueError, KeyError, TypeError):
            fence_next = 1
        next_token = max(fence_next, (max(minted) + 1) if minted else 1)
        if next_token != fence_next:
            self._atomic_write(
                self.fence_path, json.dumps({"next_token": next_token}) + "\n"
            )
        return next_token


@dataclasses.dataclass
class _Session:
    id: str
    client: str
    ttl_s: float
    deadline: float
    last_beat: float


class _BrokerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    broker: "FabricBroker"


class _BrokerHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one persistent connection, many frames
        sock = self.request
        sock.settimeout(60.0)
        broker = self.server.broker
        broker._track_conn(sock)
        try:
            while True:
                try:
                    request = recv_frame(sock)
                except (OSError, ConnectionError, ProtocolError):
                    return
                response = broker.dispatch(request)
                try:
                    send_frame(sock, response)
                except OSError:
                    return
        finally:
            broker._untrack_conn(sock)


class FabricBroker:
    """The coordination service: leases, tokens, and session liveness.

    One broker serves many sweeps; all state mutations serialize under
    one lock and persist through :class:`_JournaledLeaseStore`, so a
    SIGKILL at any instant loses nothing a client could already hold.
    Start it with ``repro fabric broker`` or programmatically::

        broker = FabricBroker(port=0).start()   # port=0: pick a free one
        ... RemoteLeaseStore("sweep", broker.addr) ...
        broker.stop()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        root=None,
        session_ttl_s: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.root = fabric_root(root)
        if session_ttl_s is None:
            session_ttl_s = float(
                os.environ.get("REPRO_FABRIC_SESSION_TTL_S", DEFAULT_SESSION_TTL_S)
            )
        self.session_ttl_s = float(session_ttl_s)
        self.sessions: Dict[str, _Session] = {}
        self.started_unix: Optional[float] = None
        self._states: Dict[str, _JournaledLeaseStore] = {}
        self._lock = threading.RLock()
        self._server: Optional[_BrokerServer] = None
        self._thread: Optional[threading.Thread] = None
        self._session_seq = 0
        self._conns: List[socket.socket] = []

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def marker_path(self) -> pathlib.Path:
        return self.root / "broker.json"

    def start(self) -> "FabricBroker":
        self._recover_all()
        server = _BrokerServer((self.host, self.port), _BrokerHandler)
        server.broker = self
        self.host, self.port = server.server_address[:2]
        self._server = server
        self.started_unix = time.time()
        self._write_marker()
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="fabric-broker",
            daemon=True,
        )
        self._thread.start()
        logger.info("fabric broker listening on %s (root %s)", self.addr, self.root)
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        with self._lock:
            conns, self._conns = self._conns, []
        for sock in conns:  # sever persistent client connections too
            try:
                sock.close()
            except OSError:
                pass
        try:
            self.marker_path.unlink()
        except OSError:
            pass

    def _track_conn(self, sock: socket.socket) -> None:
        with self._lock:
            self._conns.append(sock)

    def _untrack_conn(self, sock: socket.socket) -> None:
        with self._lock:
            try:
                self._conns.remove(sock)
            except ValueError:
                pass

    def _write_marker(self) -> None:
        """Advertise this broker to local ``repro fabric status`` calls."""
        self.root.mkdir(parents=True, exist_ok=True)
        LeaseStore._atomic_write(
            self.marker_path,
            json.dumps(
                {
                    "addr": self.addr,
                    "pid": os.getpid(),
                    "started_unix": self.started_unix,
                }
            )
            + "\n",
        )

    def _recover_all(self) -> None:
        """Replay every sweep's broker journal so no token is reissued."""
        if not self.root.is_dir():
            return
        for journal in sorted(self.root.rglob("broker.jsonl")):
            name = journal.parent.relative_to(self.root).as_posix()
            try:
                state = self._state(name)
            except ValueError:
                continue
            next_token = state.recover()
            logger.info(
                "recovered sweep %s from %s (next token %d)",
                name,
                journal,
                next_token,
            )

    def _state(self, sweep: str) -> _JournaledLeaseStore:
        with self._lock:
            store = self._states.get(sweep)
            if store is None:
                store = _JournaledLeaseStore(sweep, root=self.root)
                store.recover()
                self._states[sweep] = store
            return store

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def _mint_session(self, client: str) -> _Session:
        self._session_seq += 1
        sid = f"s{self._session_seq}-{uuid.uuid4().hex[:8]}"
        return self._register_session(sid, client)

    def _register_session(self, sid: str, client: str) -> _Session:
        now = time.time()
        session = _Session(
            id=sid,
            client=client,
            ttl_s=self.session_ttl_s,
            deadline=now + self.session_ttl_s,
            last_beat=now,
        )
        self.sessions[sid] = session
        return session

    def _touch_session(self, sid: Optional[str], ttl_hint: Optional[float] = None):
        """Refresh a session's deadline; adopt ids minted pre-restart.

        ``ttl_hint`` (a lease TTL seen on claim/renew) stretches the
        session TTL to **two heartbeat intervals** of that lease
        (``2 * ttl/3``): a healthy holder renewing every ``ttl/3`` —
        e.g. a ``run_all`` driver lease with a 900s TTL — can miss one
        beat without being declared dead, while a genuinely quiet one
        (SIGSTOP, partition, host death) is detected at two-thirds of
        its lease TTL, *before* the lease itself expires.
        """
        if sid is None:
            return None
        session = self.sessions.get(sid)
        if session is None:
            session = self._register_session(sid, client="adopted")
        now = time.time()
        if ttl_hint:
            session.ttl_s = max(
                session.ttl_s, 2 * heartbeat_interval(float(ttl_hint))
            )
        session.last_beat = now
        session.deadline = now + session.ttl_s
        return session

    def _session_expired(self, sid: str) -> bool:
        """Only a session this broker *saw* go quiet counts as dead —
        an id it never met (minted before a restart) gets TTL grace."""
        session = self.sessions.get(sid)
        return session is not None and time.time() > session.deadline

    def _export_lease(self, lease: Optional[Lease]) -> Optional[dict]:
        """Lease -> wire dict; a held lease whose session died is
        exported already-expired so remote scans see it reclaimable."""
        if lease is None:
            return None
        record = lease.to_dict()
        if (
            lease.status == "held"
            and lease.session is not None
            and self._session_expired(lease.session)
        ):
            record["expires_unix"] = min(
                float(record["expires_unix"]), self.sessions[lease.session].deadline
            )
        return record

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{str(op).replace('-', '_')}", None)
        if handler is None:
            return {"ok": False, "kind": "value", "error": f"unknown op {op!r}"}
        try:
            with self._lock:
                payload = handler(request)
        except StaleFencingTokenError as exc:
            return {
                "ok": False,
                "kind": "stale",
                "key": exc.key,
                "held_token": exc.held_token,
                "current_token": exc.current_token,
                "worker": exc.worker,
            }
        except (ValueError, KeyError, TypeError) as exc:
            return {"ok": False, "kind": "value", "error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("broker op %s failed", op)
            return {"ok": False, "kind": "internal", "error": str(exc)}
        payload["ok"] = True
        return payload

    def _sweep_state(self, request: dict) -> _JournaledLeaseStore:
        return self._state(validate_sweep_name(str(request["sweep"])))

    @staticmethod
    def _points_from_wire(entries: Sequence[dict]):
        from repro.core.executor import Point
        from repro.verify.artifacts import config_from_dict

        return [
            Point(
                str(e["app"]), float(e["scale"]), config_from_dict(e["config"])
            )
            for e in entries
        ]

    # ---- ops ---------------------------------------------------------- #
    def _op_ping(self, request: dict) -> dict:
        return {"unix": time.time(), "addr": self.addr}

    def _op_hello(self, request: dict) -> dict:
        client = str(request.get("client", "?"))[:128]
        session = self._mint_session(client)
        return {"session": session.id, "session_ttl_s": session.ttl_s}

    def _op_grid_init(self, request: dict) -> dict:
        state = self._sweep_state(request)
        points = self._points_from_wire(request["points"])
        fresh = not state.exists
        keys = state.init_grid(points, meta=request.get("meta") or {})
        if fresh:
            state.journal_event(
                {"ev": "grid-init", "sweep": state.sweep, "points": len(keys)}
            )
        return {"keys": keys}

    def _op_grid_exists(self, request: dict) -> dict:
        return {"exists": self._sweep_state(request).exists}

    def _op_grid_load(self, request: dict) -> dict:
        state = self._sweep_state(request)
        try:
            record = json.loads(state.grid_path.read_text())
        except (OSError, ValueError) as exc:
            raise ValueError(
                f"fabric sweep {state.sweep!r} has no readable grid: {exc}"
            ) from exc
        return {"points": record.get("points", [])}

    def _op_claim(self, request: dict) -> dict:
        state = self._sweep_state(request)
        session_id = _validate_id(str(request["session"]), "session id")
        worker = _validate_id(str(request["worker"]), "worker id")
        ttl_s = float(request["ttl_s"])
        self._touch_session(session_id, ttl_hint=ttl_s)
        lease = state.claim(
            str(request["key"]),
            worker,
            ttl_s,
            session=session_id,
            session_expired=self._session_expired,
        )
        if lease is not None:
            state.journal_event(
                {
                    "ev": "claim",
                    "key": lease.key,
                    "token": lease.token,
                    "worker": worker,
                    "session": session_id,
                    "reason": "steal" if lease.stolen else "grant",
                }
            )
        return {"lease": lease.to_dict() if lease is not None else None}

    def _op_renew(self, request: dict) -> dict:
        state = self._sweep_state(request)
        lease = Lease.from_dict(dict(request["lease"]))
        self._touch_session(request.get("session"), ttl_hint=lease.ttl_s)
        renewed = state.renew(lease)
        return {"lease": renewed.to_dict()}

    def _op_release(self, request: dict) -> dict:
        state = self._sweep_state(request)
        lease = Lease.from_dict(dict(request["lease"]))
        status = str(request["status"])
        if status not in ("done", "failed"):
            raise ValueError(f"invalid release status {status!r}")
        self._touch_session(request.get("session"))
        released = state.release(lease, status)
        if released:
            state.journal_event(
                {
                    "ev": "release",
                    "key": lease.key,
                    "token": lease.token,
                    "status": status,
                }
            )
        return {"released": released}

    def _op_read_lease(self, request: dict) -> dict:
        state = self._sweep_state(request)
        self._touch_session(request.get("session"))
        return {"lease": self._export_lease(state.read_lease(str(request["key"])))}

    def _op_leases(self, request: dict) -> dict:
        state = self._sweep_state(request)
        self._touch_session(request.get("session"))
        return {"leases": [self._export_lease(le) for le in state.leases()]}

    def _op_heartbeat(self, request: dict) -> dict:
        state = self._sweep_state(request)
        session_id = _validate_id(str(request["session"]), "session id")
        worker = _validate_id(str(request["worker"]), "worker id")
        self._touch_session(session_id)
        info = request.get("info") or {}
        record = {
            "worker": worker,
            "pid": 0,
            "pid_start": None,
            "session": session_id,
            "beat_unix": time.time(),
            "alive": True,
        }
        if isinstance(info, dict):
            record.update(info)
        state.write_worker_record(worker, record)
        return {}

    def _op_workers(self, request: dict) -> dict:
        state = self._sweep_state(request)
        now = time.time()
        records = []
        for record in state.workers():
            sid = record.get("session")
            if isinstance(sid, str):
                record["alive"] = not self._session_expired(sid) and (
                    record.get("phase") != "exited"
                )
            beat = record.get("beat_unix")
            if isinstance(beat, (int, float)):
                record["beat_age_s"] = max(0.0, now - float(beat))
            records.append(record)
        return {"records": records}

    def _op_claims(self, request: dict) -> dict:
        return {"records": self._sweep_state(request).claims()}

    def _op_rejections(self, request: dict) -> dict:
        return {"records": self._sweep_state(request).rejections()}

    def _op_record_rejection(self, request: dict) -> dict:
        state = self._sweep_state(request)
        self._touch_session(request.get("session"))
        held = request.get("held_token")
        current = request.get("current_token")
        state.record_rejection(
            str(request["key"]),
            int(held) if held is not None else None,
            int(current) if current is not None else None,
            _validate_id(str(request["worker"]), "worker id"),
        )
        return {}

    def _op_delete_sweep(self, request: dict) -> dict:
        state = self._sweep_state(request)
        state.delete()
        self._states.pop(state.sweep, None)
        return {}

    def _op_status(self, request: dict) -> dict:
        now = time.time()
        sweeps = sorted(
            set(self._states)
            | {
                grid.parent.relative_to(self.root).as_posix()
                for grid in self.root.rglob("grid.json")
            }
            if self.root.is_dir()
            else set(self._states)
        )
        return {
            "addr": self.addr,
            "uptime_s": (now - self.started_unix) if self.started_unix else 0.0,
            "sweeps": sweeps,
            "sessions": [
                {
                    "id": s.id,
                    "client": s.client,
                    "beat_age_s": max(0.0, now - s.last_beat),
                    "expired": now > s.deadline,
                }
                for s in self.sessions.values()
            ],
        }


# --------------------------------------------------------------------- #
# client
# --------------------------------------------------------------------- #
class RemoteLeaseStore:
    """:class:`LeaseStore`-compatible client for a :class:`FabricBroker`.

    Implements the full store surface over the wire so the fabric's
    worker/fence/coordinator machinery is transport-agnostic.  Every
    RPC runs under ``rpc_timeout_s`` with decorrelated-jitter backoff
    until ``retry_budget_s`` is spent; then the circuit breaker opens
    and this store raises :class:`FabricTransportError` — immediately
    for ``breaker_cooldown_s``, after which one half-open probe decides
    whether to close the circuit again.  Fail-closed by construction:
    no response, no write.
    """

    transport = "tcp"

    def __init__(
        self,
        sweep: str,
        addr: Optional[str] = None,
        rpc_timeout_s: Optional[float] = None,
        retry_budget_s: Optional[float] = None,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        breaker_cooldown_s: Optional[float] = None,
        client_name: Optional[str] = None,
        rng_seed: Optional[object] = None,
    ) -> None:
        self.sweep = validate_sweep_name(sweep)
        addr = addr or os.environ.get("REPRO_FABRIC_ADDR")
        if not addr:
            raise ValueError(
                "no broker address: pass addr or set REPRO_FABRIC_ADDR"
            )
        self.host, self.port = parse_addr(addr)
        self.addr = f"{self.host}:{self.port}"
        self.rpc_timeout_s = _env_float(
            "REPRO_FABRIC_RPC_TIMEOUT_S", rpc_timeout_s, 5.0
        )
        self.retry_budget_s = _env_float(
            "REPRO_FABRIC_RETRY_BUDGET_S", retry_budget_s, 10.0
        )
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.breaker_cooldown_s = _env_float(
            "REPRO_FABRIC_BREAKER_COOLDOWN_S", breaker_cooldown_s,
            self.retry_budget_s,
        )
        self.client_name = client_name or f"{socket.gethostname()}:{os.getpid()}"
        # Seeded per client identity: concurrent clients back off
        # decorrelated from each other, tests stay reproducible.
        self._rng = random.Random(
            rng_seed if rng_seed is not None else f"{self.sweep}|{self.client_name}"
        )
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None
        self.session: Optional[str] = None
        self._open_until = 0.0
        self._was_tripped = False
        #: purely informational parity with the fs store
        self.root = None
        self.dir = f"tcp://{self.addr}/{self.sweep}"
        self.grid_path = f"{self.dir}/grid.json"

    # ------------------------------------------------------------------ #
    # transport core: deadline + decorrelated jitter + circuit breaker
    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.rpc_timeout_s
        )
        sock.settimeout(self.rpc_timeout_s)
        return sock

    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _attempt(self, op: str, payload: dict) -> dict:
        if self._sock is None:
            self._sock = self._connect()
        sock = self._sock
        if self.session is None and op != "hello":
            send_frame(sock, {"op": "hello", "client": self.client_name})
            hello = recv_frame(sock)
            if not hello.get("ok") or not isinstance(hello.get("session"), str):
                raise ProtocolError(f"broker refused hello: {hello!r}")
            self.session = hello["session"]
        frame = {"op": op, "sweep": self.sweep, "session": self.session}
        frame.update(payload)
        send_frame(sock, frame)
        return recv_frame(sock)

    def _rpc(self, op: str, **payload) -> dict:
        with self._lock:
            now = time.monotonic()
            if now < self._open_until:
                raise FabricTransportError(
                    f"circuit open to broker {self.addr} "
                    f"(retrying in {self._open_until - now:.1f}s)"
                )
            # Past the cooldown the first call is a half-open probe:
            # exactly one attempt decides closed vs re-opened.
            probing = self._was_tripped and self._open_until > 0.0
            deadline = now + (0.0 if probing else self.retry_budget_s)
            delay = self.backoff_base_s
            while True:
                try:
                    response = self._attempt(op, payload)
                    break
                except (OSError, ConnectionError, ProtocolError) as exc:
                    self._close()
                    if time.monotonic() >= deadline:
                        self._open_until = (
                            time.monotonic() + self.breaker_cooldown_s
                        )
                        self._was_tripped = True
                        raise FabricTransportError(
                            f"broker {self.addr} unreachable "
                            f"({type(exc).__name__}: {exc}); circuit open for "
                            f"{self.breaker_cooldown_s:g}s"
                        ) from exc
                    # decorrelated jitter: uniform over [base, 3*prev]
                    delay = min(
                        self.backoff_cap_s,
                        self._rng.uniform(
                            self.backoff_base_s, max(self.backoff_base_s, 3 * delay)
                        ),
                    )
                    time.sleep(
                        max(0.0, min(delay, deadline - time.monotonic()))
                    )
            self._open_until = 0.0
            self._was_tripped = False
        if response.get("ok"):
            return response
        kind = response.get("kind")
        if kind == "stale":
            raise StaleFencingTokenError(
                str(response.get("key", "")),
                response.get("held_token"),
                response.get("current_token"),
                str(response.get("worker", "")),
            )
        if kind == "value":
            raise ValueError(str(response.get("error", "broker rejected request")))
        raise FabricTransportError(
            f"broker {self.addr} error: {response.get('error', response)!r}"
        )

    def reachable(self, timeout_s: float = 1.0) -> bool:
        """One cheap ping, no retries — for status displays only."""
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=timeout_s
            ) as sock:
                sock.settimeout(timeout_s)
                send_frame(sock, {"op": "ping"})
                return bool(recv_frame(sock).get("ok"))
        except (OSError, ConnectionError, ProtocolError):
            return False

    def close(self) -> None:
        with self._lock:
            self._close()

    # ------------------------------------------------------------------ #
    # LeaseStore surface
    # ------------------------------------------------------------------ #
    @property
    def exists(self) -> bool:
        return bool(self._rpc("grid-exists")["exists"])

    def init_grid(self, points, meta: Optional[dict] = None) -> List[str]:
        entries = [
            {
                "app": p[0],
                "scale": p[1],
                "config": dataclasses.asdict(p[2]),
            }
            for p in points
        ]
        return list(self._rpc("grid-init", points=entries, meta=meta or {})["keys"])

    def load_grid(self):
        from repro.core.executor import Point
        from repro.verify.artifacts import config_from_dict

        out = []
        for entry in self._rpc("grid-load")["points"]:
            point = Point(
                str(entry["app"]),
                float(entry["scale"]),
                config_from_dict(entry["config"]),
            )
            out.append((str(entry["key"]), point))
        return out

    def claim(
        self,
        key: str,
        worker: str,
        ttl_s: float,
        session: Optional[str] = None,
        session_expired: Optional[Callable[[str], bool]] = None,
    ) -> Optional[Lease]:
        # session/session_expired are broker-side concerns; the client's
        # own session is attached to every frame automatically.
        raw = self._rpc("claim", key=key, worker=worker, ttl_s=float(ttl_s))["lease"]
        return Lease.from_dict(raw) if raw is not None else None

    def renew(self, lease: Lease) -> Lease:
        return Lease.from_dict(self._rpc("renew", lease=lease.to_dict())["lease"])

    def release(self, lease: Lease, status: str) -> bool:
        return bool(
            self._rpc("release", lease=lease.to_dict(), status=status)["released"]
        )

    def read_lease(self, key: str) -> Optional[Lease]:
        raw = self._rpc("read-lease", key=key)["lease"]
        return Lease.from_dict(raw) if raw is not None else None

    def current_token(self, key: str) -> Optional[int]:
        lease = self.read_lease(key)
        return lease.token if lease is not None else None

    def leases(self) -> List[Lease]:
        return [Lease.from_dict(raw) for raw in self._rpc("leases")["leases"]]

    def heartbeat(self, worker: str, **info: object) -> None:
        self._rpc("heartbeat", worker=worker, info=info)

    def workers(self) -> List[dict]:
        return list(self._rpc("workers")["records"])

    def claims(self) -> List[dict]:
        return list(self._rpc("claims")["records"])

    def rejections(self) -> List[dict]:
        return list(self._rpc("rejections")["records"])

    def record_rejection(
        self,
        key: str,
        held_token: Optional[int],
        current_token: Optional[int],
        worker: str,
    ) -> None:
        self._rpc(
            "record-rejection",
            key=key,
            held_token=held_token,
            current_token=current_token,
            worker=worker,
        )

    def delete(self) -> None:
        self._rpc("delete-sweep")

    def broker_status(self) -> dict:
        return self._rpc("status")


def _env_float(name: str, override: Optional[float], default: float) -> float:
    if override is not None:
        return float(override)
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"{name}={raw!r} is not a number (seconds expected)"
        ) from None


def make_lease_store(
    sweep: str, addr: Optional[str] = None, root=None, **client_kwargs
):
    """Transport selection: ``addr`` (or ``REPRO_FABRIC_ADDR``) -> TCP,
    otherwise the filesystem store."""
    addr = addr if addr is not None else os.environ.get("REPRO_FABRIC_ADDR")
    if addr:
        return RemoteLeaseStore(sweep, addr, **client_kwargs)
    return LeaseStore(sweep, root=root)


def query_broker(
    addr: str, op: str = "status", timeout_s: float = 2.0, **payload
) -> dict:
    """One-shot RPC for status displays: no session, no retries."""
    host, port = parse_addr(addr)
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.settimeout(timeout_s)
            frame = {"op": op}
            frame.update(payload)
            send_frame(sock, frame)
            response = recv_frame(sock)
    except (OSError, ConnectionError) as exc:
        raise FabricTransportError(
            f"broker {addr} unreachable: {exc}"
        ) from exc
    if not response.get("ok"):
        raise FabricTransportError(
            f"broker {addr} error: {response.get('error', response)!r}"
        )
    return response


def broker_marker(root=None) -> Optional[dict]:
    """The ``broker.json`` advertisement under a fabric root, if any."""
    try:
        record = json.loads((fabric_root(root) / "broker.json").read_text())
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


# --------------------------------------------------------------------- #
# chaos proxy
# --------------------------------------------------------------------- #
class ChaosProxy:
    """Deterministic in-process TCP chaos proxy for broker traffic.

    Modes (switch with :meth:`set_mode`; transitions are applied to new
    *and* established connections, so a partition severs live sockets):

    - ``forward``   — byte-for-byte relay (optionally delayed: seeded
      jitter around ``delay_s``, deterministic per seed)
    - ``drop``      — accept and immediately close (connection refused
      as far as the protocol is concerned)
    - ``blackhole`` — accept, swallow every byte, never respond (the
      client burns its full RPC deadline)
    - ``half_open`` — accept, relay one partial frame, then close (the
      classic half-open TCP failure)

    ``partition()`` / ``heal()`` wrap the blackhole mode and kill live
    connections, emulating a network partition during lease renewal.
    """

    def __init__(
        self,
        target_addr: str,
        host: str = "127.0.0.1",
        port: int = 0,
        seed: int = 0,
        delay_s: float = 0.0,
    ) -> None:
        self.target_host, self.target_port = parse_addr(target_addr)
        self.host = host
        self.port = port
        self.delay_s = float(delay_s)
        self.mode = "forward"
        self._rng = random.Random(seed)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        self.accepted = 0

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        listener.settimeout(0.1)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self._kill_conns()

    def set_mode(self, mode: str) -> None:
        if mode not in ("forward", "drop", "blackhole", "half_open"):
            raise ValueError(f"unknown chaos mode {mode!r}")
        self.mode = mode

    def partition(self) -> None:
        """Black-hole new traffic and sever established connections."""
        self.set_mode("blackhole")
        self._kill_conns()

    def heal(self) -> None:
        self.set_mode("forward")

    def _kill_conns(self) -> None:
        with self._lock:
            conns, self._conns = self._conns, []
        for sock in conns:
            try:
                sock.close()
            except OSError:
                pass

    def _track(self, sock: socket.socket) -> None:
        with self._lock:
            self._conns.append(sock)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.accepted += 1
            mode = self.mode
            if mode == "drop":
                client.close()
                continue
            self._track(client)
            threading.Thread(
                target=self._serve_conn,
                args=(client, mode),
                name=f"chaos-conn-{self.accepted}",
                daemon=True,
            ).start()

    def _serve_conn(self, client: socket.socket, mode: str) -> None:
        if mode == "blackhole":
            try:
                client.settimeout(None)
                while client.recv(1 << 16):
                    pass  # swallow; never respond
            except OSError:
                pass
            finally:
                try:
                    client.close()
                except OSError:
                    pass
            return
        try:
            upstream = socket.create_connection(
                (self.target_host, self.target_port), timeout=5.0
            )
        except OSError:
            client.close()
            return
        self._track(upstream)
        if mode == "half_open":
            # Relay a few bytes of the first frame, then vanish: the
            # peer is left holding a half-open conversation.
            try:
                chunk = client.recv(3)
                if chunk:
                    upstream.sendall(chunk)
            except OSError:
                pass
            for sock in (client, upstream):
                try:
                    sock.close()
                except OSError:
                    pass
            return
        for a, b, delayed in (
            (client, upstream, True),
            (upstream, client, False),
        ):
            threading.Thread(
                target=self._pump,
                args=(a, b, delayed),
                name="chaos-pump",
                daemon=True,
            ).start()

    def _pump(self, src: socket.socket, dst: socket.socket, delayed: bool):
        try:
            while True:
                chunk = src.recv(1 << 16)
                if not chunk:
                    break
                if delayed and self.delay_s > 0:
                    # Seeded jitter in [0.5, 1.5] * delay_s: deterministic
                    # per seed, decorrelated across chunks.
                    time.sleep(self.delay_s * self._rng.uniform(0.5, 1.5))
                dst.sendall(chunk)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
