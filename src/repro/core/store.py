"""Columnar result store + materialized views (the CQRS read side).

Per-sweep JSON/text blobs do not scale to a fleet-sized result corpus:
regenerating a paper figure or comparing two ``MODEL_VERSION``s from
``results/*.json`` means re-simulation or file spelunking.  This module
is the append-only system of record for *completed* results — every
simulation point, every driver artifact, every bench run and golden
digest — stored columnar in one sqlite database so those questions
become queries.

Write side (commands)
---------------------
``ingest_result`` appends one :class:`~repro.core.metrics.RunResult`
keyed by its run-cache content hash plus serving fidelity, exploded into
a typed ``runs`` row and long-format ``run_metrics`` rows (time
categories, per-resource utilization, protocol counters, meta).  The
executor calls it for every point a grid resolves (fresh or cache-hit),
tagging the sweep id when a checkpoint is active, so sweeps build the
corpus as a side effect.  ``ingest_artifact`` appends a rendered
experiment table (``repro experiment`` / ``run_all_experiments.py``
outputs land here; ``repro report ingest`` migrates the committed
``results/*.txt``/``*.json`` pairs and the ``.runcache``).
``append_bench`` / ``append_golden`` give ``scripts/bench_compare.py``
and ``scripts/golden_regression.py`` durable history rows, making the
``BENCH_*.json`` files one export format rather than the source of
truth.

Read side (materialized views)
------------------------------
Plain tables, refreshed *incrementally on ingest* (never by rescanning
the corpus): ``view_speedups`` (the figure-grid projection),
``view_phases`` (per-barrier-epoch fractions), ``view_hotspots`` (ranked
protocol hotspots) and ``view_slowdowns`` (per-group best/worst spread,
Table-3 style — the one genuine aggregate, recomputed per affected
group).  ``python -m repro report`` is the query client.

Durability contract
-------------------
Appends are idempotent per primary key (re-ingesting a cached point is a
no-op), serialized across processes by the same advisory lock the run
cache uses (:mod:`repro.core.fslock`) on top of sqlite's own locking,
and never allowed to break a sweep: the executor's hook downgrades any
store failure to a logged warning.  Non-finite metric values survive the
round-trip (sqlite would silently turn ``NaN`` into ``NULL``; they are
stored as tagged text instead).  The schema carries a version and opens
of an older database run in-place migrations; a *newer* database is
refused rather than guessed at.

Environment: ``REPRO_STORE_PATH`` overrides the database path (default
``results/store.sqlite``); ``REPRO_RESULT_STORE=0`` disables the layer.
Optional parquet export is gated on ``pyarrow`` being importable.
"""

from __future__ import annotations

import json
import logging
import math
import os
import pathlib
import sqlite3
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.fslock import file_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import RunResult

logger = logging.getLogger("repro.store")

DEFAULT_STORE_PATH = os.path.join("results", "store.sqlite")

#: bump on any schema change; add a matching entry in _MIGRATIONS so an
#: existing database upgrades in place on open.
#: 2: runs/view_speedups gain the ``fidelity`` column (part of the
#:    primary key — an analytic serve must never shadow the DES row for
#:    the same content hash).
SCHEMA_VERSION = 2

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    key            TEXT NOT NULL,
    fidelity       TEXT NOT NULL DEFAULT 'des',
    model_version  INTEGER NOT NULL,
    sweep          TEXT,
    app            TEXT NOT NULL,
    problem        TEXT,
    protocol       TEXT,
    config         TEXT,
    seed           INTEGER,
    scale          REAL,
    n_procs        INTEGER,
    total_cycles   INTEGER,
    serial_cycles  INTEGER,
    speedup        REAL,
    ideal_speedup  REAL,
    created_unix   REAL,
    record         TEXT NOT NULL,
    PRIMARY KEY (key, fidelity)
);
CREATE INDEX IF NOT EXISTS idx_runs_app ON runs (app, protocol, scale);
CREATE INDEX IF NOT EXISTS idx_runs_model ON runs (model_version);
CREATE TABLE IF NOT EXISTS run_metrics (
    key      TEXT NOT NULL,
    fidelity TEXT NOT NULL DEFAULT 'des',
    kind     TEXT NOT NULL,
    name     TEXT NOT NULL,
    value,
    PRIMARY KEY (key, fidelity, kind, name)
);
CREATE TABLE IF NOT EXISTS artifacts (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_id TEXT NOT NULL,
    scale         REAL,
    model_version INTEGER,
    source        TEXT,
    created_unix  REAL,
    title         TEXT,
    text          TEXT NOT NULL,
    data          TEXT
);
CREATE INDEX IF NOT EXISTS idx_artifacts_id ON artifacts (experiment_id, scale);
CREATE TABLE IF NOT EXISTS bench_history (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    kind          TEXT NOT NULL,
    recorded_unix REAL,
    model_version INTEGER,
    source        TEXT,
    payload       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS golden_history (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    recorded_unix REAL,
    model_version INTEGER,
    tag           TEXT NOT NULL,
    digest        TEXT NOT NULL,
    total_cycles  INTEGER,
    source        TEXT
);
CREATE INDEX IF NOT EXISTS idx_golden_mv ON golden_history (model_version, tag);
CREATE TABLE IF NOT EXISTS view_speedups (
    key            TEXT NOT NULL,
    fidelity       TEXT NOT NULL DEFAULT 'des',
    app            TEXT NOT NULL,
    protocol       TEXT,
    scale          REAL,
    model_version  INTEGER,
    config         TEXT,
    speedup        REAL,
    ideal_speedup  REAL,
    PRIMARY KEY (key, fidelity)
);
CREATE TABLE IF NOT EXISTS view_phases (
    key      TEXT NOT NULL,
    fidelity TEXT NOT NULL DEFAULT 'des',
    phase    INTEGER NOT NULL,
    label    TEXT,
    start    INTEGER,
    end      INTEGER,
    category TEXT NOT NULL,
    fraction REAL,
    PRIMARY KEY (key, fidelity, phase, category)
);
CREATE TABLE IF NOT EXISTS view_hotspots (
    key      TEXT NOT NULL,
    fidelity TEXT NOT NULL DEFAULT 'des',
    rank     INTEGER NOT NULL,
    name     TEXT NOT NULL,
    cycles   INTEGER,
    events   INTEGER,
    PRIMARY KEY (key, fidelity, rank)
);
CREATE TABLE IF NOT EXISTS view_slowdowns (
    app           TEXT NOT NULL,
    protocol      TEXT,
    scale         REAL,
    model_version INTEGER,
    points        INTEGER,
    best          REAL,
    worst         REAL,
    slowdown      REAL,
    PRIMARY KEY (app, protocol, scale, model_version)
);
"""


# --------------------------------------------------------------------- #
# value encoding: sqlite quietly maps NaN -> NULL, so non-finite floats
# are stored as tagged text and decoded on the way out.
# --------------------------------------------------------------------- #
def _enc(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'nan' / 'inf' / '-inf'
    return value


def _dec(value: Any) -> Any:
    if isinstance(value, str) and value in ("nan", "inf", "-inf"):
        return float(value)
    return value


def _json_dumps(payload: Any) -> str:
    # allow_nan keeps non-finite meta values round-trippable (json.loads
    # parses the NaN/Infinity tokens back); sort for stable diffs.
    return json.dumps(payload, sort_keys=True, default=repr, allow_nan=True)


class SchemaMismatchError(RuntimeError):
    """The database on disk was written by a *newer* schema than this
    checkout understands; refusing to guess (upgrade the checkout or
    point ``REPRO_STORE_PATH`` elsewhere)."""


def _migrate_v1(conn: sqlite3.Connection) -> None:
    """v1 -> v2: runs/run_metrics/view_speedups gain the ``fidelity``
    column (default ``'des'``, which is what every v1 row was)."""
    for table in ("runs", "run_metrics", "view_speedups"):
        cols = {row[1] for row in conn.execute(f"PRAGMA table_info({table})")}
        if "fidelity" not in cols:
            conn.execute(
                f"ALTER TABLE {table} ADD COLUMN fidelity TEXT NOT NULL DEFAULT 'des'"
            )


_MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {1: _migrate_v1}


class ResultStore:
    """One sqlite database of results, artifacts and CI history rows."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self._lock_path = self.path.with_name(self.path.name + ".lock")
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            with file_lock(self._lock_path):
                self._ensure_schema(conn)
            self._conn = conn
        return self._conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        have = conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        if not have:
            conn.executescript(_TABLES)
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            conn.commit()
            return
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        version = int(row[0]) if row else 0
        if version > SCHEMA_VERSION:
            conn.close()
            self._conn = None
            raise SchemaMismatchError(
                f"result store {self.path} has schema v{version}, this "
                f"checkout understands v{SCHEMA_VERSION}; refusing to open"
            )
        while version < SCHEMA_VERSION:
            migrate = _MIGRATIONS.get(version)
            if migrate is None:
                raise SchemaMismatchError(
                    f"result store {self.path}: no migration from schema "
                    f"v{version} to v{version + 1}"
                )
            migrate(conn)
            version += 1
            logger.info("migrated result store %s to schema v%d", self.path, version)
        conn.executescript(_TABLES)  # idempotent: adds any new tables
        conn.execute(
            "UPDATE meta SET value=? WHERE key='schema_version'",
            (str(SCHEMA_VERSION),),
        )
        conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # ------------------------------------------------------------------ #
    # write side: run ingest + incremental view refresh
    # ------------------------------------------------------------------ #
    def ingest_result(
        self,
        key: str,
        result: "RunResult",
        scale: Optional[float] = None,
        sweep: Optional[str] = None,
        fidelity: str = "des",
    ) -> bool:
        """Append one run (idempotent per ``(key, fidelity)``).

        Returns ``True`` when the row was new — only then are the
        materialized views refreshed for it.
        """
        return self.ingest_results([(key, result, scale)], sweep=sweep,
                                   fidelity=fidelity) > 0

    def ingest_results(
        self,
        entries: Iterable[Tuple[str, "RunResult", Optional[float]]],
        sweep: Optional[str] = None,
        fidelity: str = "des",
    ) -> int:
        """Append a batch of ``(key, result, scale)`` in one locked
        transaction; returns the number of genuinely new rows."""
        from repro.core.reporting import run_record
        from repro.core.runcache import MODEL_VERSION

        conn = self._connect()
        fresh = 0
        now = time.time()
        with file_lock(self._lock_path):
            for key, result, scale in entries:
                cur = conn.execute(
                    """INSERT OR IGNORE INTO runs
                       (key, fidelity, model_version, sweep, app, problem,
                        protocol, config, seed, scale, n_procs, total_cycles,
                        serial_cycles, speedup, ideal_speedup, created_unix,
                        record)
                       VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)""",
                    (
                        key,
                        fidelity,
                        MODEL_VERSION,
                        sweep,
                        result.app_name,
                        result.problem,
                        result.config.protocol,
                        result.config.label(),
                        result.config.seed,
                        scale,
                        result.n_procs,
                        result.total_cycles,
                        result.serial_cycles,
                        _enc(result.speedup),
                        _enc(result.ideal_speedup),
                        now,
                        _json_dumps(run_record(result)),
                    ),
                )
                if not cur.rowcount:
                    continue  # already ingested: views are current
                fresh += 1
                self._insert_metrics(conn, key, fidelity, result)
                self._refresh_views_for(conn, key, fidelity, result, scale)
            conn.commit()
        return fresh

    def _insert_metrics(
        self, conn: sqlite3.Connection, key: str, fidelity: str, result: "RunResult"
    ) -> None:
        import dataclasses as _dc

        rows: List[Tuple[str, str, str, Any]] = []
        for name, cycles in result.time_breakdown().items():
            rows.append((key, "cycles", name, cycles))
        for name, frac in result.utilization().items():
            rows.append((key, "util", name, _enc(frac)))
        counters = _dc.asdict(result.counters)
        counters.update(counters.pop("extra", {}))
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                rows.append((key, "counter", name, _enc(value)))
        for name, value in result.meta.items():
            rows.append((key, "meta", name, _enc(value)))
        conn.executemany(
            "INSERT OR IGNORE INTO run_metrics (key, fidelity, kind, name, value) "
            "VALUES (?, ?, ?, ?, ?)",
            [(k, fidelity, kind, name, value) for k, kind, name, value in rows],
        )

    def _refresh_views_for(
        self,
        conn: sqlite3.Connection,
        key: str,
        fidelity: str,
        result: "RunResult",
        scale: Optional[float],
    ) -> None:
        """Incrementally refresh every materialized view touched by one
        fresh run — projections insert their own rows; the slowdown
        aggregate recomputes only the affected group."""
        from repro.core.runcache import MODEL_VERSION

        conn.execute(
            """INSERT OR REPLACE INTO view_speedups
               (key, fidelity, app, protocol, scale, model_version, config,
                speedup, ideal_speedup)
               VALUES (?,?,?,?,?,?,?,?,?)""",
            (
                key,
                fidelity,
                result.app_name,
                result.config.protocol,
                scale,
                MODEL_VERSION,
                result.config.label(),
                _enc(result.speedup),
                _enc(result.ideal_speedup),
            ),
        )
        phase_rows = []
        for i, phase in enumerate(result.phase_breakdown()):
            fractions = phase["fractions"]
            assert isinstance(fractions, dict)
            for category, fraction in fractions.items():
                phase_rows.append(
                    (key, fidelity, i, phase["label"], phase["start"],
                     phase["end"], category, _enc(fraction))
                )
        if phase_rows:
            conn.executemany(
                "INSERT OR REPLACE INTO view_phases "
                "(key, fidelity, phase, label, start, end, category, fraction) "
                "VALUES (?,?,?,?,?,?,?,?)",
                phase_rows,
            )
        hot_rows = [
            (key, fidelity, rank, name, cycles, count)
            for rank, (name, cycles, count) in enumerate(result.hotspots(), 1)
        ]
        if hot_rows:
            conn.executemany(
                "INSERT OR REPLACE INTO view_hotspots "
                "(key, fidelity, rank, name, cycles, events) VALUES (?,?,?,?,?,?)",
                hot_rows,
            )
        # The one genuine aggregate: recompute just this run's group.
        conn.execute(
            """INSERT OR REPLACE INTO view_slowdowns
               (app, protocol, scale, model_version, points, best, worst, slowdown)
               SELECT app, protocol, scale, model_version, COUNT(*),
                      MAX(speedup), MIN(speedup),
                      (MAX(speedup) - MIN(speedup)) / MAX(speedup)
               FROM runs
               WHERE app = ? AND protocol IS ? AND scale IS ?
                 AND model_version = ?
                 AND typeof(speedup) IN ('integer', 'real')""",
            (result.app_name, result.config.protocol, scale, MODEL_VERSION),
        )

    # ------------------------------------------------------------------ #
    # write side: artifacts + CI history
    # ------------------------------------------------------------------ #
    def ingest_artifact(
        self,
        experiment_id: str,
        text: str,
        data: Optional[dict] = None,
        scale: Optional[float] = None,
        title: Optional[str] = None,
        source: str = "driver",
    ) -> int:
        """Append one rendered experiment table; returns its row id.

        Append-only history: re-running a driver adds a new row and
        :meth:`artifact` serves the newest for the id (and scale, when
        given) — older renders stay queryable for longitudinal diffs.
        """
        from repro.core.runcache import MODEL_VERSION

        conn = self._connect()
        with file_lock(self._lock_path):
            cur = conn.execute(
                """INSERT INTO artifacts
                   (experiment_id, scale, model_version, source, created_unix,
                    title, text, data)
                   VALUES (?,?,?,?,?,?,?,?)""",
                (
                    experiment_id,
                    scale,
                    MODEL_VERSION,
                    source,
                    time.time(),
                    title,
                    text,
                    None if data is None else _json_dumps(data),
                ),
            )
            conn.commit()
        return int(cur.lastrowid or 0)

    def append_bench(
        self, kind: str, payload: dict, source: str = "bench"
    ) -> int:
        from repro.core.runcache import MODEL_VERSION

        conn = self._connect()
        with file_lock(self._lock_path):
            cur = conn.execute(
                "INSERT INTO bench_history "
                "(kind, recorded_unix, model_version, source, payload) "
                "VALUES (?,?,?,?,?)",
                (kind, time.time(), MODEL_VERSION, source, _json_dumps(payload)),
            )
            conn.commit()
        return int(cur.lastrowid or 0)

    def append_golden(
        self,
        points: Dict[str, Dict[str, Any]],
        model_version: Optional[int] = None,
        source: str = "golden",
    ) -> int:
        """Append one golden-grid snapshot (one row per grid tag).

        Identical (model_version, tag, digest) rows are deduplicated so
        a CI job re-checking an unchanged tree does not inflate history.
        """
        if model_version is None:
            from repro.core.runcache import MODEL_VERSION

            model_version = MODEL_VERSION
        conn = self._connect()
        added = 0
        now = time.time()
        with file_lock(self._lock_path):
            for tag in sorted(points):
                info = points[tag]
                dup = conn.execute(
                    "SELECT 1 FROM golden_history WHERE model_version=? AND "
                    "tag=? AND digest=?",
                    (model_version, tag, info["digest"]),
                ).fetchone()
                if dup:
                    continue
                conn.execute(
                    "INSERT INTO golden_history "
                    "(recorded_unix, model_version, tag, digest, total_cycles, "
                    "source) VALUES (?,?,?,?,?,?)",
                    (now, model_version, tag, info["digest"],
                     info.get("total_cycles"), source),
                )
                added += 1
            conn.commit()
        return added

    # ------------------------------------------------------------------ #
    # read side: queries over the materialized views + history
    # ------------------------------------------------------------------ #
    def artifact(
        self, experiment_id: str, scale: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Newest stored render of one experiment (optionally at a scale)."""
        conn = self._connect()
        sql = "SELECT * FROM artifacts WHERE experiment_id = ?"
        args: List[Any] = [experiment_id]
        if scale is not None:
            sql += " AND scale = ?"
            args.append(scale)
        sql += " ORDER BY id DESC LIMIT 1"
        row = conn.execute(sql, args).fetchone()
        return dict(row) if row else None

    def artifact_ids(self) -> List[Tuple[str, Optional[float], int]]:
        """Distinct (experiment_id, scale, renders) triples in the store."""
        conn = self._connect()
        return [
            (r["experiment_id"], r["scale"], r["n"])
            for r in conn.execute(
                "SELECT experiment_id, scale, COUNT(*) AS n FROM artifacts "
                "GROUP BY experiment_id, scale ORDER BY experiment_id, scale"
            )
        ]

    def speedups(
        self,
        app: Optional[str] = None,
        protocol: Optional[str] = None,
        scale: Optional[float] = None,
        model_version: Optional[int] = None,
        fidelity: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Figure-grid projection rows, filtered by any subset of axes."""
        clauses, args = [], []  # type: List[str], List[Any]
        for column, value in (
            ("app", app), ("protocol", protocol), ("scale", scale),
            ("model_version", model_version), ("fidelity", fidelity),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        conn = self._connect()
        rows = conn.execute(
            "SELECT * FROM view_speedups" + where +
            " ORDER BY app, protocol, scale, config", args
        )
        return [
            {k: _dec(v) for k, v in dict(r).items()} for r in rows
        ]

    def slowdowns(self, model_version: Optional[int] = None) -> List[Dict[str, Any]]:
        conn = self._connect()
        where, args = "", []  # type: str, List[Any]
        if model_version is not None:
            where, args = " WHERE model_version = ?", [model_version]
        rows = conn.execute(
            "SELECT * FROM view_slowdowns" + where +
            " ORDER BY app, protocol, scale", args
        )
        return [dict(r) for r in rows]

    def metrics(self, key: str, kind: Optional[str] = None) -> Dict[str, Any]:
        conn = self._connect()
        sql = "SELECT kind, name, value FROM run_metrics WHERE key = ?"
        args: List[Any] = [key]
        if kind is not None:
            sql += " AND kind = ?"
            args.append(kind)
        return {
            (r["name"] if kind else f"{r['kind']}.{r['name']}"): _dec(r["value"])
            for r in conn.execute(sql, args)
        }

    def bench_trend(self, kind: str, last: int = 10) -> List[Dict[str, Any]]:
        """The newest ``last`` bench payloads of one kind, oldest first."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT * FROM bench_history WHERE kind = ? ORDER BY id DESC LIMIT ?",
            (kind, last),
        ).fetchall()
        out = []
        for r in reversed(rows):
            rec = dict(r)
            rec["payload"] = json.loads(rec["payload"])
            out.append(rec)
        return out

    def golden_digests(self, model_version: int) -> Dict[str, Dict[str, Any]]:
        """Newest digest per tag recorded under one model version."""
        conn = self._connect()
        rows = conn.execute(
            "SELECT tag, digest, total_cycles, MAX(id) FROM golden_history "
            "WHERE model_version = ? GROUP BY tag",
            (model_version,),
        )
        return {
            r["tag"]: {"digest": r["digest"], "total_cycles": r["total_cycles"]}
            for r in rows
        }

    def diff_model_versions(self, old: int, new: int) -> Dict[str, Any]:
        """Compare two model versions entirely from store rows.

        Golden digests align per grid tag; the speedup view aggregates
        per (app, protocol) mean speedup.  No simulation involved.
        """
        old_golden = self.golden_digests(old)
        new_golden = self.golden_digests(new)
        golden_rows = []
        for tag in sorted(set(old_golden) | set(new_golden)):
            a, b = old_golden.get(tag), new_golden.get(tag)
            if a is None or b is None:
                status = "only-v%d" % (new if a is None else old)
            elif a["digest"] == b["digest"]:
                status = "same"
            else:
                status = "changed"
            golden_rows.append({
                "tag": tag,
                "status": status,
                "old_cycles": a["total_cycles"] if a else None,
                "new_cycles": b["total_cycles"] if b else None,
            })
        conn = self._connect()
        speed_rows = []
        sql = (
            "SELECT app, protocol, AVG(speedup) AS mean_speedup, COUNT(*) AS n "
            "FROM view_speedups WHERE model_version = ? "
            "AND typeof(speedup) IN ('integer','real') GROUP BY app, protocol"
        )
        olds = {(r["app"], r["protocol"]): r for r in conn.execute(sql, (old,))}
        news = {(r["app"], r["protocol"]): r for r in conn.execute(sql, (new,))}
        for group in sorted(set(olds) | set(news), key=repr):
            a, b = olds.get(group), news.get(group)
            speed_rows.append({
                "app": group[0],
                "protocol": group[1],
                "old_mean": a["mean_speedup"] if a else None,
                "old_points": a["n"] if a else 0,
                "new_mean": b["mean_speedup"] if b else None,
                "new_points": b["n"] if b else 0,
            })
        return {"old": old, "new": new, "golden": golden_rows,
                "speedups": speed_rows}

    def stats(self) -> Dict[str, Any]:
        conn = self._connect()

        def count(table: str) -> int:
            return int(conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0])

        return {
            "path": str(self.path),
            "schema_version": SCHEMA_VERSION,
            "bytes": self.path.stat().st_size if self.path.is_file() else 0,
            "runs": count("runs"),
            "metrics": count("run_metrics"),
            "artifacts": count("artifacts"),
            "bench_rows": count("bench_history"),
            "golden_rows": count("golden_history"),
            "model_versions": [
                int(r[0]) for r in conn.execute(
                    "SELECT DISTINCT model_version FROM runs ORDER BY 1"
                )
            ],
        }

    # ------------------------------------------------------------------ #
    # export: the store is the source of truth; files are projections
    # ------------------------------------------------------------------ #
    _EXPORT_TABLES = (
        "runs", "run_metrics", "artifacts", "bench_history", "golden_history",
        "view_speedups", "view_phases", "view_hotspots", "view_slowdowns",
    )

    def _table_rows(self, table: str) -> Tuple[List[str], List[Tuple]]:
        if table not in self._EXPORT_TABLES:
            raise ValueError(
                f"unknown table {table!r} (valid: {', '.join(self._EXPORT_TABLES)})"
            )
        conn = self._connect()
        cur = conn.execute(f"SELECT * FROM {table}")
        headers = [d[0] for d in cur.description]
        return headers, [tuple(_dec(v) for v in row) for row in cur.fetchall()]

    def export_csv(self, path: os.PathLike, table: str = "runs") -> int:
        import csv

        headers, rows = self._table_rows(table)
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(headers)
            writer.writerows(rows)
        return len(rows)

    def export_jsonl(self, path: os.PathLike, table: str = "runs") -> int:
        headers, rows = self._table_rows(table)
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(_json_dumps(dict(zip(headers, row))) + "\n")
        return len(rows)

    def export_parquet(self, path: os.PathLike, table: str = "runs") -> int:
        """Columnar file export; needs the optional ``pyarrow`` dependency."""
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError as exc:  # pragma: no cover - environment-dependent
            raise RuntimeError(
                "parquet export needs pyarrow (pip install pyarrow); "
                "CSV/JSONL export has no extra dependency"
            ) from exc
        headers, rows = self._table_rows(table)
        columns = {
            h: [row[i] for row in rows] for i, h in enumerate(headers)
        }
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        pq.write_table(pa.table(columns), out)
        return len(rows)


# --------------------------------------------------------------------- #
# process-wide default store, configured from the environment
# --------------------------------------------------------------------- #
_store: Optional[ResultStore] = None
_configured = False


def store_path() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_STORE_PATH", DEFAULT_STORE_PATH))


def result_store() -> Optional[ResultStore]:
    """The process-wide store, or ``None`` when ``REPRO_RESULT_STORE=0``."""
    global _store, _configured
    if not _configured:
        if os.environ.get("REPRO_RESULT_STORE", "1") not in ("0", "false", "no"):
            _store = ResultStore(store_path())
        else:
            _store = None
        _configured = True
    return _store


def reset_result_store() -> None:
    """Forget the configured store so the next use re-reads the environment
    (tests point ``REPRO_STORE_PATH`` at a temp file and call this)."""
    global _store, _configured
    if _store is not None:
        _store.close()
    _store = None
    _configured = False


def ingest_quietly(
    entries: Iterable[Tuple[str, "RunResult", Optional[float]]],
    sweep: Optional[str] = None,
    fidelity: str = "des",
) -> int:
    """Best-effort batch ingest for the executor hook.

    The store must never break a sweep: any failure (locked volume, full
    disk, schema refusal) is logged and swallowed, and the simulation
    results flow on exactly as before.  Returns rows actually appended.
    """
    store = result_store()
    if store is None:
        return 0
    try:
        return store.ingest_results(entries, sweep=sweep, fidelity=fidelity)
    except Exception as exc:  # noqa: BLE001 - the whole point
        logger.warning("result-store ingest skipped: %s", exc)
        return 0


def ingest_artifact_quietly(
    experiment_id: str,
    text: str,
    data: Optional[dict] = None,
    scale: Optional[float] = None,
    title: Optional[str] = None,
    source: str = "driver",
) -> Optional[int]:
    """Best-effort artifact append for driver/CLI hooks (same contract as
    :func:`ingest_quietly`: a store problem never fails the experiment)."""
    store = result_store()
    if store is None:
        return None
    try:
        return store.ingest_artifact(
            experiment_id, text, data=data, scale=scale, title=title, source=source
        )
    except Exception as exc:  # noqa: BLE001 - the whole point
        logger.warning("result-store artifact ingest skipped: %s", exc)
        return None
