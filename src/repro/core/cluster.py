"""Cluster assembly: nodes, fabric, protocol engine.

:class:`Cluster` instantiates the whole simulated machine from a
:class:`~repro.core.config.ClusterConfig`:

* one :class:`Node` per SMP (processors, memory bus, I/O bus, NI,
  interrupt controller),
* the contention-free interconnect and the fast-messages layer,
* the cluster-wide page directory,
* the selected protocol engine (HLRC or AURC), already wired to every
  NI's request hook.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.membus import MemoryBus
from repro.arch.processor import Processor
from repro.core.config import ClusterConfig
from repro.core.stats import MetricsRegistry
from repro.net.faults import FaultInjector
from repro.net.iobus import IOBus
from repro.net.link import Network
from repro.net.messaging import MessagingLayer
from repro.net.nic import NetworkInterface, NICGroup
from repro.osys.interrupts import InterruptController
from repro.osys.vm import PageDirectory
from repro.protocol import PROTOCOLS
from repro.protocol.base import ProtocolContext
from repro.sim.engine import DEFAULT_LIVELOCK_EVENTS, Simulator, Watchdog


class Node:
    """One SMP node of the cluster."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        config: ClusterConfig,
        network: Network,
        faults: Optional[FaultInjector] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        arch, comm = config.arch, config.comm
        self.sim = sim
        self.comm = comm
        self.node_id = node_id
        self.membus = MemoryBus(sim, arch, name=f"membus{node_id}")
        #: one I/O bus per NI (multi-NI nodes get independent I/O paths)
        self.iobuses = [
            IOBus(sim, comm.io_bytes_per_cycle, name=f"iobus{node_id}.{k}")
            for k in range(comm.nis_per_node)
        ]
        self.iobus = self.iobuses[0]
        base = node_id * comm.procs_per_node
        self.cpus: List[Processor] = [
            Processor(
                sim,
                global_id=base + i,
                cpu_index=i,
                bus=self.membus,
                name=f"n{node_id}c{i}",
            )
            for i in range(comm.procs_per_node)
        ]
        for cpu in self.cpus:
            cpu.node = self
        nics = [
            NetworkInterface(
                sim,
                node_id,
                arch,
                comm,
                self.membus,
                iobus,
                network,
                register=(comm.nis_per_node == 1),
                faults=faults,
            )
            for iobus in self.iobuses
        ]
        self.nic = nics[0] if comm.nis_per_node == 1 else NICGroup(nics)
        self.irq = InterruptController(sim, self.cpus, comm)
        #: dedicated protocol processor (polling / NI-offload modes): a
        #: CPU-like executor that is *not* part of the application procs
        self.service_cpu: Processor | None = None
        if comm.protocol_processing in ("polling-dedicated", "ni-offload"):
            self.service_cpu = Processor(
                sim,
                global_id=-(node_id + 1),  # outside the application id space
                cpu_index=len(self.cpus),
                bus=self.membus,
                name=f"n{node_id}svc",
            )
            self.service_cpu.node = self
        if metrics is not None:
            self.membus.metrics = metrics
            for iobus in self.iobuses:
                iobus.metrics = metrics
            for nic in nics:
                nic.metrics = metrics
            for cpu in self.cpus:
                cpu.metrics = metrics
            if self.service_cpu is not None:
                self.service_cpu.metrics = metrics

    # ------------------------------------------------------------------ #
    def dispatch_request(self, body_factory, name: str = "req"):
        """Route an incoming protocol request to a handler executor per
        the configured protocol-processing mode.

        ``body_factory(cpu)`` builds the handler generator for the chosen
        executor.  Returns an event that fires at handler completion.
        """
        mode = self.comm.protocol_processing
        if mode == "interrupt":
            return self.irq.raise_interrupt(body_factory, name=name)
        from repro.sim.primitives import Event  # local import avoids cycle

        done = Event(self.sim, name=f"{name}.done")
        cpu = self.service_cpu
        assert cpu is not None

        if mode == "polling-dedicated":
            # the poller notices after (on average) poll_latency cycles;
            # no interrupt, no application CPU stolen
            def poller():
                yield self.sim.timeout(self.comm.poll_latency)
                result = yield from cpu.run_handler(body_factory(cpu))
                done.succeed(result)

            self.sim.spawn(poller(), name=name)
            return done

        # ni-offload: the slow programmable assist runs the handler; it
        # also consumes NI core bandwidth for the extra assist work
        def assist():
            overhead = self.comm.assist_overhead
            if overhead:
                yield self.sim.timeout(self.nic.core.latency(overhead))
            result = yield from cpu.run_handler(body_factory(cpu))
            done.succeed(result)

        self.sim.spawn(assist(), name=name)
        return done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, cpus={len(self.cpus)})"


class Cluster:
    """The fully assembled simulated machine."""

    def __init__(
        self,
        config: ClusterConfig,
        sim: Optional[Simulator] = None,
        metrics: Optional["MetricsRegistry"] = None,
        verify_log: Optional[object] = None,
    ) -> None:
        self.config = config
        #: metrics registry shared by every instrumented component, or
        #: ``None`` (the default) for a zero-observability-cost run
        self.metrics = metrics if metrics is not None and metrics.enabled else None
        metrics = self.metrics
        if verify_log is None and config.verify:
            from repro.verify import VerifyLog  # local import avoids cycle

            verify_log = VerifyLog()
        #: conformance-oracle event log, or ``None`` (the default) for a
        #: zero-verification-cost run (see repro.verify)
        self.verify_log = verify_log
        #: shared wire-fault source (None when config.faults is all-off)
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(config.faults) if config.faults.enabled else None
        )
        if sim is None:
            # Deadlock detection is free (one scan when the heap drains)
            # so it is always on; livelock counting forces the general
            # dispatch loop, so it is armed only when faults can cause
            # retry storms that might spin.
            watchdog = Watchdog(
                deadlock=True,
                livelock_events=(
                    DEFAULT_LIVELOCK_EVENTS if self.fault_injector else None
                ),
            )
            sim = Simulator(watchdog=watchdog)
        self.sim = sim
        arch, comm = config.arch, config.comm
        self.network = Network(
            self.sim, arch.link_bytes_per_cycle, arch.link_latency_cycles
        )
        self.network.metrics = metrics
        self.nodes: List[Node] = [
            Node(
                self.sim,
                i,
                config,
                self.network,
                faults=self.fault_injector,
                metrics=metrics,
            )
            for i in range(config.n_nodes)
        ]
        self.procs: List[Processor] = [cpu for node in self.nodes for cpu in node.cpus]
        self.msg = MessagingLayer(
            self.sim,
            arch,
            comm,
            {n.node_id: n.nic for n in self.nodes},
            faults=config.faults,
        )
        self.directory = PageDirectory(
            comm.page_size, config.n_nodes, policy=config.home_policy
        )
        self.ctx = ProtocolContext(
            sim=self.sim,
            arch=arch,
            comm=comm,
            msg=self.msg,
            directory=self.directory,
            nodes=self.nodes,
            procs=self.procs,
            free_page_fetches=config.free_page_fetches,
            metrics=metrics,
            verify=verify_log,
            collective=config.collective,
        )
        self.protocol = PROTOCOLS[config.protocol](self.ctx)

    # ------------------------------------------------------------------ #
    @property
    def n_procs(self) -> int:
        return len(self.procs)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node_of(self, proc_id: int) -> Node:
        return self.nodes[proc_id // self.config.comm.procs_per_node]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.config.label()})"
