"""Trace execution: drive an :class:`~repro.apps.base.AppTrace` through a
simulated cluster and collect a :class:`~repro.core.metrics.RunResult`.

This is the main user-facing entry point::

    result = run_simulation(get_app("fft", scale=0.25), ClusterConfig())
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING, List, Optional

from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ,
    RELEASE,
    TOUCH,
    WRITE,
    AppTrace,
)
from repro.core.cluster import Cluster
from repro.core.config import ClusterConfig
from repro.core.metrics import BUSY_CATEGORIES, RunResult
from repro.core.stats import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.processor import Processor


def _worker(cluster: Cluster, cpu: "Processor", events: List) -> object:
    """The application thread of one processor."""
    proto = cluster.protocol
    read_immediate = proto.read_immediate
    write_immediate = proto.write_immediate
    for ev in events:
        kind = ev[0]
        if kind == COMPUTE:
            yield from cpu.run_block(ev[1], ev[2], ev[3])
        elif kind == READ:
            # Most accesses hit a valid copy and cost no simulated time;
            # the immediate forms skip the generator trampoline for them.
            if not read_immediate(cpu, ev[1]):
                yield from proto.read(cpu, ev[1])
        elif kind == WRITE:
            runs = ev[3] if len(ev) > 3 else 1
            if not write_immediate(cpu, ev[1], ev[2], runs):
                yield from proto.write(cpu, ev[1], ev[2], runs)
        elif kind == ACQUIRE:
            yield from proto.acquire(cpu, ev[1])
        elif kind == RELEASE:
            yield from proto.release(cpu, ev[1])
        elif kind == BARRIER:
            yield from proto.barrier(cpu, ev[1])
        elif kind == TOUCH:
            proto.first_touch_now(cpu, ev[1])
        else:
            raise ValueError(f"unknown trace event kind {kind!r}")
    cpu.finish_time = cluster.sim.now


def _harvest_resource_busy(cluster: Cluster) -> dict:
    """Per-resource busy cycles in one end-of-run walk.

    The fluid-queue servers (buses, NI cores, receive gates) track busy
    cycles unconditionally, and processor stats already split time by
    category — so resource occupancy costs the DES hot loop nothing and
    is populated on *every* run, profiled or not.
    """
    busy = {}
    link_bpc = cluster.network.bytes_per_cycle
    for node in cluster.nodes:
        busy[node.membus.name] = node.membus.queue.busy_cycles
        for iobus in node.iobuses:
            busy[iobus.name] = iobus.queue.busy_cycles
        for nic in getattr(node.nic, "nics", [node.nic]):
            busy[nic.core.name] = nic.core.busy_cycles
            busy[nic.rx_gate.name] = nic.rx_gate.busy_cycles
        # outgoing-link serialization time of this node's wire traffic
        busy[f"link{node.node_id}"] = int(node.nic.wire_bytes_sent / link_bpc)
    for cpu in cluster.procs:
        busy[f"cpu.{cpu.name}"] = sum(cpu.stats.time[cat] for cat in BUSY_CATEGORIES)
    return busy


def _env_verify() -> bool:
    """True when REPRO_VERIFY asks for the oracle on every run."""
    return os.environ.get("REPRO_VERIFY", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def run_simulation(
    app: AppTrace,
    config: Optional[ClusterConfig] = None,
    max_events: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    verify_log: Optional[object] = None,
) -> RunResult:
    """Simulate ``app`` on a cluster built from ``config``.

    Parameters
    ----------
    app:
        The workload trace (its ``n_procs`` must equal the config's
        ``total_procs``).
    config:
        Cluster configuration; defaults to the achievable set.
    max_events:
        Optional safety valve forwarded to the simulator.
    metrics:
        Optional :class:`~repro.core.stats.MetricsRegistry` for a
        profiled run: per-message-type counts, queue-depth samples,
        handler hotspots and per-barrier-epoch phase marks flow into the
        result.  Collection is passive, so profiling never changes the
        simulated outcome.  Callers that cache results should leave this
        ``None`` (the cache key does not cover profiling state).
    verify_log:
        Optional :class:`~repro.verify.VerifyLog` to collect protocol
        conformance events into (tests pass one to inspect the stream).
        When ``None``, a log is created automatically iff
        ``config.verify`` is set or ``REPRO_VERIFY=1``.  Like profiling,
        verification is passive: simulated time is bit-identical either
        way.  After the run the happens-before oracle replays the log;
        violations land on ``RunResult.violations`` and in
        ``RunResult.meta`` and a replayable artifact is written under
        ``results/violations/``.
    """
    if config is None:
        config = ClusterConfig()
    if app.n_procs != config.total_procs:
        raise ValueError(
            f"trace built for {app.n_procs} processors but config has "
            f"{config.total_procs}"
        )
    if verify_log is None and (config.verify or _env_verify()):
        from repro.verify import VerifyLog

        verify_log = VerifyLog()
    cluster = Cluster(config, metrics=metrics, verify_log=verify_log)
    for proc_id, events in enumerate(app.events):
        cluster.sim.spawn(
            _worker(cluster, cluster.procs[proc_id], events), name=f"app.p{proc_id}"
        )
    cluster.sim.run(max_events=max_events)

    unfinished = [c.name for c in cluster.procs if c.finish_time is None]
    if unfinished:
        # The engine watchdog normally catches this first (with the
        # blocked process names); this is the belt-and-braces fallback.
        raise RuntimeError(f"deadlock: processors never finished: {unfinished}")

    total = max(c.finish_time for c in cluster.procs)
    meta = {
        "network_messages": float(cluster.network.messages_carried),
        "network_bytes": float(cluster.network.bytes_carried),
        "sim_events": float(cluster.sim.dispatched),
        "interrupts": float(
            sum(node.irq.interrupts_raised for node in cluster.nodes)
        ),
    }
    injector = cluster.fault_injector
    if injector is not None:
        # Reliability accounting (only present when faults are enabled,
        # so fault-free results stay bit-identical to the seed model).
        meta.update({k: float(v) for k, v in injector.stats().items()})
        meta["retransmits"] = float(cluster.msg.retransmits)
        meta["retransmitted_bytes"] = float(cluster.msg.retransmitted_bytes)
        meta["duplicates_suppressed"] = float(
            sum(node.nic.duplicates_suppressed for node in cluster.nodes)
        )
        meta["messages_lost"] = float(
            sum(node.nic.messages_dropped for node in cluster.nodes)
        )
    registry = cluster.metrics
    phase_marks = []
    metrics_counters = {}
    metrics_cycles = {}
    queue_stats = {}
    if registry is not None:
        # close the last epoch so phase deltas cover the whole run
        registry.phase_mark(total, "run_end", cluster.protocol.ctx.aggregate_time())
        phase_marks = list(registry.phase_marks)
        metrics_counters = dict(registry.counters)
        metrics_cycles = dict(registry.cycles)
        # fold union busy trackers (e.g. node-level handler occupancy)
        # into the cycle accumulators for export
        for name, cycles in registry.busy_cycles().items():
            metrics_cycles.setdefault(f"busy.{name}", cycles)
        queue_stats = registry.queue_summary()
    violations: List = []
    if cluster.verify_log is not None:
        from repro.verify import check_log
        from repro.verify.artifacts import dump_violation_artifact, replay_command

        violations = check_log(
            cluster.verify_log.records,
            n_procs=config.total_procs,
            procs_per_node=config.comm.procs_per_node,
            homes=cluster.directory.homes(),
        )
        meta["verify.events"] = float(len(cluster.verify_log.records))
        meta["verify.violations"] = float(len(violations))
        if violations:
            path = dump_violation_artifact(
                app, config, violations, cluster.verify_log
            )
            if path is not None:
                print(
                    f"repro.verify: {len(violations)} violation(s); "
                    f"replay with: {replay_command(path)}",
                    file=sys.stderr,
                )
    return RunResult(
        app_name=app.name,
        problem=app.problem,
        config=config,
        total_cycles=total,
        serial_cycles=app.serial_cycles,
        proc_stats=[c.stats for c in cluster.procs],
        counters=cluster.protocol.counters,
        uncontended_busy_max=app.max_busy_cycles,
        meta=meta,
        resource_busy=_harvest_resource_busy(cluster),
        phase_marks=phase_marks,
        metrics_counters=metrics_counters,
        metrics_cycles=metrics_cycles,
        queue_stats=queue_stats,
        violations=violations,
    )
