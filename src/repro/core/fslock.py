"""Advisory file locking for on-disk state shared between processes.

Two sweeps running on one machine share the run cache and (if pointed at
the same name) a checkpoint journal.  Individual record writes are
already atomic (temp file + ``os.replace``), but read-modify-write
sequences — journal appends, quarantine moves — need mutual exclusion.
:func:`file_lock` provides it with BSD ``flock``:

* the lock dies with its holder, so a SIGKILLed sweep can never leave
  the directory permanently locked — a leftover lock *file* is inert
  metadata, not a held lock (stale-lock recovery is automatic);
* the holder's pid is recorded in the lock file purely for diagnostics;
* on platforms without ``fcntl`` (Windows) the lock degrades to a no-op
  rather than blocking the harness — single-machine POSIX clusters are
  the deployment target.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Iterator, Optional

try:  # POSIX only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class LockTimeout(TimeoutError):
    """The lock stayed held by a *live* process for the whole timeout."""

    def __init__(self, path: str, timeout: float, holder: Optional[int]) -> None:
        self.path = path
        self.holder = holder
        who = f"pid {holder}" if holder else "an unknown process"
        super().__init__(
            f"could not lock {path} within {timeout:.1f}s (held by {who}); "
            "another sweep is writing here — wait for it or use a separate "
            "REPRO_CACHE_DIR/REPRO_CHECKPOINT_DIR"
        )


def lock_holder(path: os.PathLike) -> Optional[int]:
    """Best-effort pid recorded in a lock file (``None`` if unreadable).

    Note this is who *last acquired* the lock, not necessarily a live
    holder: with ``flock`` a dead process's lock is already released.
    """
    try:
        with open(path, "r") as fh:
            return int(fh.read().strip() or 0) or None
    except (OSError, ValueError):
        return None


@contextlib.contextmanager
def file_lock(path: os.PathLike, timeout: float = 30.0) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``path`` for the ``with`` body.

    Non-blocking acquisition retried until ``timeout`` (seconds), then
    :class:`LockTimeout`.  The lock file itself is left in place after
    release — it is a rendezvous point, not a token, so its existence
    means nothing (see module docstring on stale locks).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    os.makedirs(os.path.dirname(os.fspath(path)) or ".", exist_ok=True)
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        deadline = time.monotonic() + timeout
        delay = 0.005
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        os.fspath(path), timeout, lock_holder(path)
                    ) from None
                time.sleep(delay)
                delay = min(delay * 2, 0.1)
        try:
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
