"""Advisory file locking for on-disk state shared between processes.

Two sweeps running on one machine share the run cache and (if pointed at
the same name) a checkpoint journal.  Individual record writes are
already atomic (temp file + ``os.replace``), but read-modify-write
sequences — journal appends, quarantine moves — need mutual exclusion.
:func:`file_lock` provides it with BSD ``flock``:

* the lock dies with its holder, so a SIGKILLed sweep can never leave
  the directory permanently locked — a leftover lock *file* is inert
  metadata, not a held lock (stale-lock recovery is automatic);
* the holder's ``(pid, process start time)`` pair is recorded in the
  lock file for diagnostics and staleness checks.  The start time is
  what makes the check immune to PID reuse: a recycled PID is a
  *different* process with a different start time, so
  :func:`lock_holder` reports it as stale instead of treating it as a
  live holder forever;
* on platforms without ``fcntl`` (Windows) the lock degrades to a no-op
  rather than blocking the harness — single-machine POSIX clusters are
  the deployment target.

The same ``(pid, start time)`` identity primitive backs worker liveness
in the distributed sweep fabric (:mod:`repro.core.fabric`): heartbeat
files carry it, so a vanished worker whose PID was recycled is still
detected as dead and its leases are reclaimed.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Iterator, Optional, Tuple

try:  # POSIX only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: procfs mount point; tests monkeypatch this to simulate hosts without
#: /proc (macOS, slim containers) where start-time identity degrades to
#: TTL-only liveness in the fabric (never "holder assumed dead").
PROC_ROOT = "/proc"


def has_procfs() -> bool:
    """Whether this host can resolve ``(pid, start time)`` identity."""
    return process_start_time(os.getpid()) is not None


class LockTimeout(TimeoutError):
    """The lock stayed held by a *live* process for the whole timeout."""

    def __init__(self, path: str, timeout: float, holder: Optional[int]) -> None:
        self.path = path
        self.holder = holder
        who = f"pid {holder}" if holder else "an unknown process"
        super().__init__(
            f"could not lock {path} within {timeout:.1f}s (held by {who}); "
            "another sweep is writing here — wait for it or use a separate "
            "REPRO_CACHE_DIR/REPRO_CHECKPOINT_DIR"
        )


def process_start_time(pid: int) -> Optional[int]:
    """Kernel start time (clock ticks since boot) of ``pid``, or ``None``.

    Read from field 22 of ``/proc/<pid>/stat``.  The comm field (2) can
    itself contain spaces and parentheses, so parsing anchors on the
    *last* ``')'``.  ``None`` means "no such process" or "no /proc here"
    (macOS, containers without procfs) — callers must then fall back to
    a plain liveness check.
    """
    try:
        with open(f"{PROC_ROOT}/{pid}/stat", "rb") as fh:
            raw = fh.read()
        fields = raw[raw.rindex(b")") + 2:].split()
        # fields[0] is stat field 3 (state); start time is field 22
        return int(fields[19])
    except (OSError, ValueError, IndexError):
        return None


def pid_alive(pid: int) -> bool:
    """Whether a process with ``pid`` currently exists (any owner)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False


def process_identity(pid: Optional[int] = None) -> Tuple[int, Optional[int]]:
    """``(pid, start time)`` identity of ``pid`` (default: this process)."""
    pid = os.getpid() if pid is None else pid
    return pid, process_start_time(pid)


def is_process_alive(pid: int, start_time: Optional[int] = None) -> bool:
    """Liveness check immune to PID reuse.

    With a recorded ``start_time``, a live process whose start time does
    not match is a *recycled PID* — some unrelated process — and counts
    as dead.  Without one (legacy lock files, no procfs) this degrades
    to the plain existence check.
    """
    if not pid_alive(pid):
        return False
    if start_time is None:
        return True
    current = process_start_time(pid)
    if current is None:
        # No procfs to compare against: existence is all we know.
        return True
    return current == start_time


def lock_holder(path: os.PathLike) -> Optional[int]:
    """PID of the *live* process that last acquired the lock, else ``None``.

    The lock file records ``pid start_time``; the holder counts only if
    a process with that pid is alive *and* (when a start time was
    recorded) its start time matches — a recycled PID can never
    impersonate a dead holder and wedge a sweep forever.  Note this is
    still advisory diagnostics: with ``flock`` a dead process's lock is
    already released regardless of what the file says.
    """
    try:
        with open(path, "r") as fh:
            parts = fh.read().split()
    except OSError:
        return None
    try:
        pid = int(parts[0])
    except (IndexError, ValueError):
        return None
    start: Optional[int] = None
    if len(parts) > 1:
        try:
            start = int(parts[1])
        except ValueError:
            start = None
    if pid and is_process_alive(pid, start):
        return pid
    return None


@contextlib.contextmanager
def file_lock(path: os.PathLike, timeout: float = 30.0) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``path`` for the ``with`` body.

    Non-blocking acquisition retried until ``timeout`` (seconds), then
    :class:`LockTimeout`.  The lock file itself is left in place after
    release — it is a rendezvous point, not a token, so its existence
    means nothing (see module docstring on stale locks).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    os.makedirs(os.path.dirname(os.fspath(path)) or ".", exist_ok=True)
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        deadline = time.monotonic() + timeout
        delay = 0.005
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        os.fspath(path), timeout, lock_holder(path)
                    ) from None
                time.sleep(delay)
                delay = min(delay * 2, 0.1)
        try:
            pid, start = process_identity()
            stamp = f"{pid} {start}\n" if start is not None else f"{pid}\n"
            os.ftruncate(fd, 0)
            os.write(fd, stamp.encode("ascii"))
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
