"""Top-level simulation configuration.

A :class:`ClusterConfig` fully determines a run: the fixed architecture,
the communication parameters under study, the protocol variant, the
machine size, and the page-home policy.  Configurations are frozen and
hashable so sweeps can cache and label runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.arch.params import ACHIEVABLE, ArchParams, CommParams
from repro.net.faults import FaultParams
from repro.osys.vm import PageDirectory
from repro.protocol.collectives import COLLECTIVES


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to assemble and run a simulated cluster."""

    arch: ArchParams = field(default_factory=ArchParams)
    comm: CommParams = field(default_factory=lambda: ACHIEVABLE)
    #: protocol variant: "hlrc" (all-software) or "aurc" (automatic update)
    protocol: str = "hlrc"
    #: total processors in the cluster (the paper uses 16 throughout)
    total_procs: int = 16
    #: page home-assignment policy (see repro.osys.vm.PageDirectory)
    home_policy: str = "first_touch"
    #: RNG seed for workload generation
    seed: int = 42
    #: diagnostic switch used by the paper's Section 7 attribution
    #: experiments: make every remote page fetch free (all faults appear
    #: local), isolating fetch cost from the other overheads
    free_page_fetches: bool = False
    #: wire-level fault injection + recovery knobs (all off by default;
    #: see repro.net.faults)
    faults: FaultParams = field(default_factory=FaultParams)
    #: run the happens-before conformance oracle on this run (see
    #: repro.verify and docs/verification.md); passive — simulated time
    #: is bit-identical with the oracle on or off
    verify: bool = False
    #: inter-node barrier collective topology (see
    #: repro.protocol.collectives): "flat" | "tree" | "dissemination"
    collective: str = "flat"

    def __post_init__(self) -> None:
        if self.protocol not in ("hlrc", "aurc"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if not isinstance(self.total_procs, int) or isinstance(self.total_procs, bool):
            raise ValueError(
                f"total_procs must be an integer, got {self.total_procs!r}"
            )
        if self.total_procs < 1:
            raise ValueError("total_procs must be >= 1")
        if self.total_procs % self.comm.procs_per_node:
            raise ValueError(
                f"total_procs {self.total_procs} not divisible by "
                f"procs_per_node {self.comm.procs_per_node}"
            )
        if self.home_policy not in PageDirectory.POLICIES:
            raise ValueError(
                f"unknown home_policy {self.home_policy!r} "
                f"(valid: {', '.join(PageDirectory.POLICIES)})"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if not isinstance(self.faults, FaultParams):
            raise ValueError(f"faults must be a FaultParams, got {self.faults!r}")
        if not isinstance(self.verify, bool):
            raise ValueError(f"verify must be a bool, got {self.verify!r}")
        if self.collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {self.collective!r} "
                f"(valid: {', '.join(COLLECTIVES)})"
            )

    @property
    def n_nodes(self) -> int:
        return self.total_procs // self.comm.procs_per_node

    def with_comm(self, **kw) -> "ClusterConfig":
        """New config with updated communication parameters."""
        return dataclasses.replace(self, comm=self.comm.replace(**kw))

    def with_faults(self, **kw) -> "ClusterConfig":
        """New config with updated fault-injection parameters."""
        return dataclasses.replace(self, faults=self.faults.replace(**kw))

    def replace(self, **kw) -> "ClusterConfig":
        return dataclasses.replace(self, **kw)

    def label(self) -> str:
        """Short human-readable description for reports."""
        c = self.comm
        return (
            f"{self.protocol} P={self.total_procs} ppn={c.procs_per_node} "
            f"o={c.host_overhead} occ={c.ni_occupancy} "
            f"bw={c.io_bus_mb_per_mhz} intr={c.interrupt_cost} "
            f"pg={c.page_size}"
        )
