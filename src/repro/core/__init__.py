"""Public top-level API: configuration, cluster assembly, runs, metrics.

Typical use::

    from repro.core import ClusterConfig, run_simulation
    from repro.apps import get_app

    app = get_app("fft", n_procs=16, scale=0.25, seed=1)
    result = run_simulation(app, ClusterConfig())
    print(result.speedup, result.time_breakdown())
"""

from repro.core.checkpoint import SweepCheckpoint, SweepInterrupted
from repro.core.cluster import Cluster, Node
from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult, geometric_mean
from repro.core.run import run_simulation
from repro.core.stats import MetricsRegistry

__all__ = [
    "Cluster",
    "ClusterConfig",
    "MetricsRegistry",
    "Node",
    "RunResult",
    "SweepCheckpoint",
    "SweepInterrupted",
    "geometric_mean",
    "run_simulation",
]
