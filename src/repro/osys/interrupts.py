"""Interrupt delivery model.

Interrupt cost is the paper's dominant communication parameter.  The model
matches Section 3:

* an interrupt costs ``interrupt_cost`` cycles to **issue** (raising the
  interrupt from the NI or another processor: inter-processor write,
  APIC traversal) and another ``interrupt_cost`` to **deliver** (context
  switch into the kernel handler on the victim CPU) — a "null interrupt"
  therefore costs twice the per-side value;
* issue time is pure latency; delivery time runs *on the victim CPU*, so
  it both delays the handler and steals cycles from the application
  thread (via :meth:`repro.arch.processor.Processor.run_handler`);
* delivery target: the paper's base protocol delivers all interrupts to
  processor 0 of each node (``fixed``); a ``round_robin`` scheme is also
  studied (Section 5) and is selectable via
  :attr:`repro.arch.params.CommParams.interrupt_scheme`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.params import CommParams
    from repro.arch.processor import Processor
    from repro.sim.engine import Simulator


class InterruptController:
    """Per-node interrupt dispatch."""

    def __init__(
        self,
        sim: "Simulator",
        processors: List["Processor"],
        comm: "CommParams",
    ) -> None:
        if not processors:
            raise ValueError("a node needs at least one processor")
        self.sim = sim
        self.processors = processors
        self.comm = comm
        #: per-side cost under the active regime (RDMA raises user-level
        #: upcalls, not interrupts: zero cycles both sides)
        self._cost = comm.effective_interrupt_cost
        self._rr_next = 0
        self.interrupts_raised = 0

    # ------------------------------------------------------------------ #
    def target_cpu(self) -> "Processor":
        """Pick the victim CPU per the configured delivery scheme."""
        if self.comm.interrupt_scheme == "round_robin":
            cpu = self.processors[self._rr_next % len(self.processors)]
            self._rr_next += 1
            return cpu
        return self.processors[0]

    def raise_interrupt(self, body, name: str = "irq") -> Event:
        """Raise an interrupt whose handler runs ``body`` on the victim CPU.

        ``body`` is either a generator, or a callable ``factory(cpu)``
        returning one — protocol handlers use the factory form to learn
        which CPU they were delivered to (for reply accounting).

        Returns an event that succeeds (with the body's return value) when
        the handler completes.
        """
        self.interrupts_raised += 1
        cpu = self.target_cpu()
        cpu.stats.count("interrupts")
        if callable(body):
            body = body(cpu)
        done = Event(self.sim, name=f"{name}.done")
        self.sim.spawn(self._dispatch(cpu, body, done), name=name)
        return done

    def _dispatch(self, cpu: "Processor", body: Iterator, done: Event):
        cost = self._cost
        if cost:
            # Issue side: latency only (NI/IPI traversal), no CPU stolen.
            yield cost
        result = yield from cpu.run_handler(self._with_delivery(body, cost))
        done.succeed(result)

    def _with_delivery(self, body: Iterator, cost: int):
        if cost:
            # Delivery side: kernel entry/context switch on the victim CPU.
            yield cost
        result = yield from body
        return result

    def null_interrupt(self, name: str = "null_irq") -> Event:
        """An interrupt with an empty handler (queue-overflow signal,
        measurement probe).  Costs the full null-interrupt time."""
        return self.raise_interrupt(iter(()), name=name)
