"""Operating-system substrate: interrupts and virtual memory.

The package is named ``osys`` (not ``os``) to avoid shadowing the standard
library inside the ``repro`` namespace.
"""

from repro.osys.interrupts import InterruptController
from repro.osys.vm import PageDirectory, pages_in_range

__all__ = ["InterruptController", "PageDirectory", "pages_in_range"]
