"""Virtual-memory substrate: page arithmetic and home assignment.

Shared data lives in a single cluster-wide virtual address space.  The
:class:`PageDirectory` maps addresses to pages and pages to their *home
node* — the node that holds the master copy under the home-based
protocols (HLRC/AURC).

Home assignment follows the systems the paper simulates:

* ``first_touch`` (default): the first node to touch a page becomes its
  home.  The paper notes an Ocean anomaly caused by first-touch
  allocation interacting with interrupt cost; first touch is established
  during an initialization pass in our application traces.
* ``round_robin``: pages are spread over nodes by page number — used as a
  fallback and by tests.
* ``block``: contiguous page ranges per node (what SPLASH-2 programs
  achieve via careful data placement, e.g. LU-contiguous).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


def pages_in_range(start: int, nbytes: int, page_size: int) -> Tuple[int, ...]:
    """Page numbers overlapped by the byte range [start, start+nbytes)."""
    if nbytes < 0:
        raise ValueError("negative range length")
    if page_size <= 0 or page_size & (page_size - 1):
        raise ValueError("page size must be a positive power of two")
    if nbytes == 0:
        return ()
    first = start // page_size
    last = (start + nbytes - 1) // page_size
    return tuple(range(first, last + 1))


class PageDirectory:
    """Cluster-wide page-to-home mapping."""

    POLICIES = ("first_touch", "round_robin", "block")

    def __init__(
        self,
        page_size: int,
        n_nodes: int,
        policy: str = "first_touch",
        total_pages_hint: Optional[int] = None,
    ) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page size must be a positive power of two")
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if policy not in self.POLICIES:
            raise ValueError(f"unknown home policy {policy!r}")
        self.page_size = page_size
        self.n_nodes = n_nodes
        self.policy = policy
        self.total_pages_hint = total_pages_hint
        self._homes: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def page_of(self, addr: int) -> int:
        if addr < 0:
            raise ValueError("negative address")
        return addr // self.page_size

    def pages_of_range(self, addr: int, nbytes: int) -> Tuple[int, ...]:
        return pages_in_range(addr, nbytes, self.page_size)

    # ------------------------------------------------------------------ #
    def home(self, page: int, toucher_node: Optional[int] = None) -> int:
        """Home node of ``page``, assigning it if not yet assigned.

        ``toucher_node`` feeds the first-touch policy; the other policies
        ignore it.
        """
        existing = self._homes.get(page)
        if existing is not None:
            return existing
        if self.policy == "first_touch":
            if toucher_node is None:
                raise ValueError(f"page {page} untouched and no toucher given")
            node = toucher_node
        elif self.policy == "round_robin":
            node = page % self.n_nodes
        else:  # block
            if self.total_pages_hint:
                per_node = max(1, -(-self.total_pages_hint // self.n_nodes))
                node = min(self.n_nodes - 1, page // per_node)
            else:
                node = page % self.n_nodes
        self._homes[page] = node
        return node

    def peek_home(self, page: int) -> Optional[int]:
        """Home node if assigned, else ``None`` (no assignment side effect)."""
        return self._homes.get(page)

    def homes(self) -> Dict[int, int]:
        """Copy of the full page -> home-node map (conformance oracle)."""
        return dict(self._homes)

    def assign_home(self, page: int, node: int) -> None:
        """Explicit placement (used by traces that model careful layout)."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        current = self._homes.get(page)
        if current is not None and current != node:
            raise ValueError(f"page {page} already homed at {current}")
        self._homes[page] = node

    def assign_many(self, pages: Iterable[int], node: int) -> None:
        for page in pages:
            self.assign_home(page, node)

    @property
    def assigned_pages(self) -> int:
        return len(self._homes)

    def homes_by_node(self) -> Dict[int, int]:
        """Count of homed pages per node (placement-balance diagnostics)."""
        counts: Dict[int, int] = {}
        for node in self._homes.values():
            counts[node] = counts.get(node, 0) + 1
        return counts
