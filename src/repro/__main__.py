"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        sys.exit(0)
