"""Setup shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks PEP 660 editable-wheel support
(legacy ``setup.py develop`` path via ``--no-use-pep517``).
"""

from setuptools import setup

setup()
