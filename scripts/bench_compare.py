#!/usr/bin/env python
"""Compare a fresh benchmark run against the committed baseline.

Two benchmark schemas are understood (auto-detected from the keys in the
fresh file, or forced with ``--kind``):

* **sweep** (``scripts/bench_sweep.py`` → ``BENCH_sweep.json``):
  cold-path timings (``serial_cold_s``, ``parallel_cold_s``) more than
  ``--threshold`` slower than baseline **fail** — a cold run is
  dominated by the simulator hot loop, so a big regression there means
  model code got slower.  The warm-path timing (``parallel_warm_s``)
  only **warns** — warm runs are disk-cache hits measured in fractions
  of a second, far too noisy on shared CI runners to gate on.
* **engine** (``scripts/bench_engine.py`` → ``BENCH_engine.json``):
  ``optimized_ns_per_event`` more than ``--threshold`` above baseline
  **fails**; the reference-loop timing and the heap-vs-calendar
  breakdown only warn.

The schema read is forward-compatible: keys the comparator does not know
are ignored, non-numeric values (nested breakdown dicts) are skipped,
and a gated key missing from either file degrades to a warning rather
than a ``KeyError`` — so a BENCH file may gain, rename, or nest fields
without breaking older checkouts' CI.

The full comparison is written to ``--out`` (JSON) so CI can upload it
as an artifact regardless of outcome.

Usage::

    python scripts/bench_compare.py --fresh BENCH_fresh.json \
        [--baseline BENCH_sweep.json] [--kind sweep|engine] \
        [--threshold 0.30] [--out bench_diff.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: per-schema comparison spec: keys gated hard vs. warn-only (values are
#: human labels), a detection key, and the default baseline path.
SCHEMAS = {
    "sweep": {
        "detect": ("serial_cold_s", "parallel_cold_s"),
        "gate": {"serial_cold_s": "serial cold", "parallel_cold_s": "parallel cold"},
        "warn": {"parallel_warm_s": "parallel warm"},
        "baseline": REPO_ROOT / "BENCH_sweep.json",
    },
    "engine": {
        "detect": ("optimized_ns_per_event",),
        "gate": {"optimized_ns_per_event": "optimized dispatch"},
        "warn": {"reference_ns_per_event": "reference dispatch"},
        "baseline": REPO_ROOT / "benchmarks" / "output" / "BENCH_engine.json",
    },
}


def detect_kind(fresh: dict) -> str:
    """Pick the schema whose detection keys appear in the fresh record."""
    for kind, spec in SCHEMAS.items():
        if any(k in fresh for k in spec["detect"]):
            return kind
    return "sweep"


def _numeric(record: dict, key: str):
    """The value at ``key`` if it is a plain number, else ``None``.

    Treats a renamed/missing key and a key that became a nested dict the
    same way — "not comparable here" — which is what keeps old checkouts
    working when a BENCH schema grows."""
    value = record.get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    return None


def compare(baseline: dict, fresh: dict, threshold: float, kind: str) -> dict:
    """Build the comparison record; ``failures`` is empty when the gate passes."""
    spec = SCHEMAS[kind]
    rows = []
    failures = []
    warnings = []
    for keys, gated in ((spec["gate"], True), (spec["warn"], False)):
        for key, label in keys.items():
            base = _numeric(baseline, key)
            new = _numeric(fresh, key)
            if base is None or new is None:
                which = "baseline" if base is None else "fresh"
                warnings.append(
                    f"{label}: key {key!r} missing or non-numeric in {which} file"
                )
                continue
            ratio = (new - base) / base if base > 0 else 0.0
            row = {
                "key": key,
                "label": label,
                "baseline_s": base,
                "fresh_s": new,
                "slowdown": round(ratio, 4),
                "gated": gated,
            }
            rows.append(row)
            if ratio > threshold:
                msg = (f"{label}: {new:.2f} vs baseline {base:.2f} "
                       f"({ratio * 100:+.1f}%, threshold +{threshold * 100:.0f}%)")
                (failures if gated else warnings).append(msg)
    return {
        "kind": kind,
        "threshold": threshold,
        "rows": rows,
        "failures": failures,
        "warnings": warnings,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="fresh benchmark output")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline (default: the schema's committed BENCH file)",
    )
    parser.add_argument(
        "--kind",
        choices=sorted(SCHEMAS),
        default=None,
        help="benchmark schema (default: auto-detect from the fresh file)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="gated-key slowdown fraction that fails the gate (default 0.30)",
    )
    parser.add_argument("--out", default="bench_diff.json", help="comparison artifact")
    args = parser.parse_args(argv)

    fresh = json.loads(pathlib.Path(args.fresh).read_text(encoding="utf-8"))
    kind = args.kind or detect_kind(fresh)
    baseline_path = pathlib.Path(
        args.baseline if args.baseline is not None else SCHEMAS[kind]["baseline"]
    )
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    report = compare(baseline, fresh, args.threshold, kind)

    pathlib.Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    for row in report["rows"]:
        gate = "gate" if row["gated"] else "warn"
        print(
            f"  {row['label']:<18} [{gate}] baseline={row['baseline_s']:9.2f} "
            f"fresh={row['fresh_s']:9.2f}  {row['slowdown'] * 100:+6.1f}%"
        )
    for msg in report["warnings"]:
        print(f"WARNING: {msg}")
    if report["failures"]:
        print(f"bench compare ({kind}) FAILED:")
        for msg in report["failures"]:
            print(f"  - {msg}")
        return 1
    print(f"bench compare ({kind}) OK (diff written to {args.out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
