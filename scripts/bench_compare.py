#!/usr/bin/env python
"""Compare a fresh benchmark run against the committed baseline.

Two benchmark schemas are understood (auto-detected from the keys in the
fresh file, or forced with ``--kind``):

* **sweep** (``scripts/bench_sweep.py`` → ``BENCH_sweep.json``):
  cold-path timings (``serial_cold_s``, ``parallel_cold_s``) more than
  ``--threshold`` slower than baseline **fail** — a cold run is
  dominated by the simulator hot loop, so a big regression there means
  model code got slower.  The warm-path timing (``parallel_warm_s``)
  only **warns** — warm runs are disk-cache hits measured in fractions
  of a second, far too noisy on shared CI runners to gate on.
* **engine** (``scripts/bench_engine.py`` → ``BENCH_engine.json``):
  ``optimized_ns_per_event`` more than ``--threshold`` above baseline
  **fails**; the reference-loop timing and the heap-vs-calendar
  breakdown only warn.

The schema read is forward-compatible: keys the comparator does not know
are ignored, non-numeric values (nested breakdown dicts) are skipped,
and a gated key missing from either file degrades to a warning rather
than a ``KeyError`` — so a BENCH file may gain, rename, or nest fields
without breaking older checkouts' CI.

The full comparison is written to ``--out`` (JSON) so CI can upload it
as an artifact regardless of outcome.

History
-------
``--store PATH`` appends the fresh record as a row in the columnar
result store's ``bench_history`` table (:mod:`repro.core.store`), and
``--trend N`` prints how the gated keys compare against the median of
the last N stored rows — the committed BENCH file stays the hard gate,
while the store accumulates the longitudinal history CI trends against
(see the ``perf-history`` job).

Usage::

    python scripts/bench_compare.py --fresh BENCH_fresh.json \
        [--baseline BENCH_sweep.json] [--kind sweep|engine] \
        [--threshold 0.30] [--out bench_diff.json] \
        [--store results/store.sqlite] [--trend 10]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: per-schema comparison spec: keys gated hard vs. warn-only (values are
#: human labels), a detection key, and the default baseline path.
SCHEMAS = {
    "sweep": {
        "detect": ("serial_cold_s", "parallel_cold_s"),
        "gate": {"serial_cold_s": "serial cold", "parallel_cold_s": "parallel cold"},
        "warn": {"parallel_warm_s": "parallel warm"},
        "baseline": REPO_ROOT / "BENCH_sweep.json",
    },
    "engine": {
        "detect": ("optimized_ns_per_event",),
        "gate": {"optimized_ns_per_event": "optimized dispatch"},
        "warn": {"reference_ns_per_event": "reference dispatch"},
        "baseline": REPO_ROOT / "benchmarks" / "output" / "BENCH_engine.json",
    },
}


def detect_kind(fresh: dict) -> str:
    """Pick the schema whose detection keys appear in the fresh record."""
    for kind, spec in SCHEMAS.items():
        if any(k in fresh for k in spec["detect"]):
            return kind
    return "sweep"


def _numeric(record: dict, key: str):
    """The value at ``key`` if it is a plain number, else ``None``.

    Treats a renamed/missing key and a key that became a nested dict the
    same way — "not comparable here" — which is what keeps old checkouts
    working when a BENCH schema grows."""
    value = record.get(key)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    return None


def compare(baseline: dict, fresh: dict, threshold: float, kind: str) -> dict:
    """Build the comparison record; ``failures`` is empty when the gate passes."""
    spec = SCHEMAS[kind]
    rows = []
    failures = []
    warnings = []
    for keys, gated in ((spec["gate"], True), (spec["warn"], False)):
        for key, label in keys.items():
            base = _numeric(baseline, key)
            new = _numeric(fresh, key)
            if base is None or new is None:
                which = "baseline" if base is None else "fresh"
                warnings.append(
                    f"{label}: key {key!r} missing or non-numeric in {which} file"
                )
                continue
            ratio = (new - base) / base if base > 0 else 0.0
            row = {
                "key": key,
                "label": label,
                "baseline_s": base,
                "fresh_s": new,
                "slowdown": round(ratio, 4),
                "gated": gated,
            }
            rows.append(row)
            if ratio > threshold:
                msg = (f"{label}: {new:.2f} vs baseline {base:.2f} "
                       f"({ratio * 100:+.1f}%, threshold +{threshold * 100:.0f}%)")
                (failures if gated else warnings).append(msg)
    return {
        "kind": kind,
        "threshold": threshold,
        "rows": rows,
        "failures": failures,
        "warnings": warnings,
    }


def _open_store(path: str):
    """Import the repro package (scripts run without PYTHONPATH) and open
    the columnar result store at ``path``."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.core.store import ResultStore

    return ResultStore(path)


def trend_report(store, kind: str, fresh: dict, last: int) -> list:
    """Compare the fresh gated keys against the median of the last
    ``last`` stored rows of this kind; returns printable lines."""
    history = store.bench_trend(kind, last=last)
    lines = []
    if not history:
        return [f"trend: no prior {kind} rows in {store.path}"]
    for key, label in SCHEMAS[kind]["gate"].items():
        new = _numeric(fresh, key)
        past = [
            v for v in (_numeric(rec["payload"], key) for rec in history)
            if v is not None
        ]
        if new is None or not past:
            continue
        median = statistics.median(past)
        delta = (new - median) / median if median > 0 else 0.0
        lines.append(
            f"trend: {label}: {new:.2f} vs median {median:.2f} over last "
            f"{len(past)} row(s) ({delta * 100:+.1f}%)"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="fresh benchmark output")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline (default: the schema's committed BENCH file)",
    )
    parser.add_argument(
        "--kind",
        choices=sorted(SCHEMAS),
        default=None,
        help="benchmark schema (default: auto-detect from the fresh file)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="gated-key slowdown fraction that fails the gate (default 0.30)",
    )
    parser.add_argument("--out", default="bench_diff.json", help="comparison artifact")
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="append the fresh record to this result store's bench_history "
        "(sqlite; created if missing)",
    )
    parser.add_argument(
        "--trend",
        type=int,
        default=0,
        metavar="N",
        help="with --store: also report the gated keys against the median "
        "of the last N history rows (informational, never gates)",
    )
    parser.add_argument(
        "--source",
        default="bench_compare",
        help="provenance label for the appended history row",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(pathlib.Path(args.fresh).read_text(encoding="utf-8"))
    kind = args.kind or detect_kind(fresh)
    baseline_path = pathlib.Path(
        args.baseline if args.baseline is not None else SCHEMAS[kind]["baseline"]
    )
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    report = compare(baseline, fresh, args.threshold, kind)

    if args.store:
        store = _open_store(args.store)
        if args.trend:  # trend against history *before* appending today's row
            for line in trend_report(store, kind, fresh, args.trend):
                print(line)
        row_id = store.append_bench(kind, fresh, source=args.source)
        report["history_row"] = row_id
        print(f"appended {kind} history row {row_id} to {args.store}")

    pathlib.Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    for row in report["rows"]:
        gate = "gate" if row["gated"] else "warn"
        print(
            f"  {row['label']:<18} [{gate}] baseline={row['baseline_s']:9.2f} "
            f"fresh={row['fresh_s']:9.2f}  {row['slowdown'] * 100:+6.1f}%"
        )
    for msg in report["warnings"]:
        print(f"WARNING: {msg}")
    if report["failures"]:
        print(f"bench compare ({kind}) FAILED:")
        for msg in report["failures"]:
            print(f"  - {msg}")
        return 1
    print(f"bench compare ({kind}) OK (diff written to {args.out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
