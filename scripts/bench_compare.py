#!/usr/bin/env python
"""Compare a fresh benchmark run against the committed baseline.

``scripts/bench_sweep.py`` writes wall-clock timings to a JSON file; the
repo commits one such file (``BENCH_sweep.json``) as the performance
baseline.  This script diffs a fresh run against it and gates CI:

* **cold-path** timings (``serial_cold_s``, ``parallel_cold_s``) more
  than ``--threshold`` slower than baseline **fail** — a cold run is
  dominated by the simulator hot loop, so a big regression there means
  model code got slower;
* **warm-path** timing (``parallel_warm_s``) only **warns** — warm runs
  are disk-cache hits measured in fractions of a second, far too noisy
  on shared CI runners to gate on.

The full comparison is written to ``--out`` (JSON) so CI can upload it
as an artifact regardless of outcome.

Usage::

    python scripts/bench_compare.py --fresh BENCH_fresh.json \
        [--baseline BENCH_sweep.json] [--threshold 0.30] \
        [--out bench_diff.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: keys gated hard vs. warn-only (values are human labels)
COLD_KEYS = {"serial_cold_s": "serial cold", "parallel_cold_s": "parallel cold"}
WARM_KEYS = {"parallel_warm_s": "parallel warm"}


def compare(baseline: dict, fresh: dict, threshold: float) -> dict:
    """Build the comparison record; ``failures`` is empty when the gate passes."""
    rows = []
    failures = []
    warnings = []
    for keys, gated in ((COLD_KEYS, True), (WARM_KEYS, False)):
        for key, label in keys.items():
            base = baseline.get(key)
            new = fresh.get(key)
            if base is None or new is None:
                warnings.append(f"{label}: key {key!r} missing from "
                                f"{'baseline' if base is None else 'fresh'} file")
                continue
            ratio = (new - base) / base if base > 0 else 0.0
            row = {
                "key": key,
                "label": label,
                "baseline_s": base,
                "fresh_s": new,
                "slowdown": round(ratio, 4),
                "gated": gated,
            }
            rows.append(row)
            if ratio > threshold:
                msg = (f"{label}: {new:.2f}s vs baseline {base:.2f}s "
                       f"({ratio * 100:+.1f}%, threshold +{threshold * 100:.0f}%)")
                (failures if gated else warnings).append(msg)
    return {
        "threshold": threshold,
        "rows": rows,
        "failures": failures,
        "warnings": warnings,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="fresh bench_sweep.py output")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="committed baseline (default: BENCH_sweep.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="cold-path slowdown fraction that fails the gate (default 0.30)",
    )
    parser.add_argument("--out", default="bench_diff.json", help="comparison artifact")
    args = parser.parse_args(argv)

    baseline = json.loads(pathlib.Path(args.baseline).read_text(encoding="utf-8"))
    fresh = json.loads(pathlib.Path(args.fresh).read_text(encoding="utf-8"))
    report = compare(baseline, fresh, args.threshold)

    pathlib.Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    for row in report["rows"]:
        gate = "gate" if row["gated"] else "warn"
        print(
            f"  {row['label']:<14} [{gate}] baseline={row['baseline_s']:7.2f}s "
            f"fresh={row['fresh_s']:7.2f}s  {row['slowdown'] * 100:+6.1f}%"
        )
    for msg in report["warnings"]:
        print(f"WARNING: {msg}")
    if report["failures"]:
        print("bench compare FAILED:")
        for msg in report["failures"]:
            print(f"  - {msg}")
        return 1
    print(f"bench compare OK (diff written to {args.out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
