#!/usr/bin/env python
"""Regenerate every table/figure at a chosen scale and archive the output.

Used to produce the numbers recorded in EXPERIMENTS.md::

    python scripts/run_all_experiments.py --scale 1.0 --out results/ --jobs 0

``--jobs N`` fans each driver's simulation grid over N worker processes
(0 = one per core); repeated points — e.g. the achievable baseline that
almost every driver needs — are simulated once and then served from the
persistent disk cache (``results/.runcache/``), so a re-run after an
interrupted regeneration, or a second regeneration at the same scale, is
mostly cache hits.  The legacy positional form
``run_all_experiments.py 1.0 results/`` still works.

The whole regeneration is **checkpointed**: every completed simulation
point is journaled under ``results/.checkpoints/run-all-s<scale>/`` and
every completed driver is recorded once its output files are written.
SIGINT/SIGTERM drain in-flight points, flush the journal and cache, and
print the one-line resume command; a SIGKILL costs at most the points in
flight.  ``--resume`` skips drivers that already completed and replays
the interrupted driver's finished points from the run cache, producing
output bit-identical to an uninterrupted run.

``--fabric`` turns one regeneration into a *cooperative* one: each
driver is claimed through a lease in the distributed sweep fabric
(``results/.fabric/run-all-s<scale>/``; see :mod:`repro.core.fabric`),
so several copies of this script launched against the same ``--out``
directory split the driver list between them instead of duplicating
work.  A copy that crashes loses its leases (holder-liveness check) and
one that stalls loses them after ``--fabric-ttl`` seconds; survivors
steal the abandoned drivers and the regeneration still completes.
With ``--fabric-addr`` (or ``REPRO_FABRIC_ADDR``) the leases come from
a TCP broker (``repro fabric broker``; :mod:`repro.core.fabric_net`)
instead of the local filesystem, so the cooperating copies can live on
*different machines*; if the broker vanishes the script degrades to the
filesystem store and still finishes.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.core.checkpoint import SweepCheckpoint, SweepInterrupted
from repro.core.executor import (
    resolve_jobs,
    set_default_checkpoint,
    set_default_fidelity,
    set_default_jobs,
)
from repro.core.store import ingest_artifact_quietly
from repro.experiments import (
    ablations,
    breakdowns,
    collectives,
    correlations,
    figure01_speedups,
    figure03_messages,
    figure04_bytes,
    figure05_host_overhead,
    figure06_ni_occupancy,
    figure07_io_bandwidth,
    figure09_interrupt,
    figure11_aurc_occupancy,
    figure12_page_size,
    figure13_clustering,
    interrupt_variants,
    microbench,
    multi_ni,
    problem_size,
    protocol_processing,
    rdma_regime,
    reliability,
    table02_events,
    table03_slowdowns,
    table04_attribution,
    table04_speedups,
)

DRIVERS = [
    ("figure01", lambda s: figure01_speedups.run(scale=s)),
    ("table02", lambda s: table02_events.run(scale=s)),
    ("figure03", lambda s: figure03_messages.run(scale=s)),
    ("figure04", lambda s: figure04_bytes.run(scale=s)),
    ("figure05", lambda s: figure05_host_overhead.run(scale=s)),
    ("figure05b", lambda s: correlations.run_host_vs_messages(scale=s)),
    ("figure06", lambda s: figure06_ni_occupancy.run(scale=s)),
    ("figure07", lambda s: figure07_io_bandwidth.run(scale=s)),
    ("figure08", lambda s: correlations.run_bandwidth_vs_bytes(scale=s)),
    ("figure09", lambda s: figure09_interrupt.run(scale=s)),
    ("figure10", lambda s: correlations.run_interrupt_vs_fetches(scale=s)),
    ("figure11", lambda s: figure11_aurc_occupancy.run(scale=s)),
    ("table03", lambda s: table03_slowdowns.run(scale=s)),
    ("table04", lambda s: table04_speedups.run(scale=s)),
    ("figure12", lambda s: figure12_page_size.run(scale=s)),
    ("figure13", lambda s: figure13_clustering.run(scale=s)),
    ("section5-uninode", lambda s: interrupt_variants.run_uniprocessor_nodes(scale=s)),
    ("section5-roundrobin", lambda s: interrupt_variants.run_round_robin(scale=s)),
    ("section7-attribution", lambda s: table04_attribution.run(scale=s)),
    ("section10-processing", lambda s: protocol_processing.run(scale=s)),
    ("section10-multini", lambda s: multi_ni.run(scale=s)),
    ("problem-size", lambda s: problem_size.run(scale=s)),
    ("reliability", lambda s: reliability.run(scale=s)),
    ("rdma_regime", lambda s: rdma_regime.run(scale=s)),
    ("collectives", lambda s: collectives.run(scale=s)),
    ("ablations", lambda s: ablations.run(scale=s)),
    ("breakdowns", lambda s: breakdowns.run(scale=s)),
    ("microbench", lambda s: microbench.run()),
]


def resume_hint(scale: float, out_dir: pathlib.Path, jobs=None) -> str:
    """The one-line command that continues an interrupted regeneration."""
    hint = f"python scripts/run_all_experiments.py --scale {scale:g} --out {out_dir}"
    if jobs is not None:
        hint += f" --jobs {jobs}"
    return hint + " --resume"


def run_all(
    scale: float,
    out_dir: pathlib.Path,
    jobs=None,
    quiet: bool = False,
    resume: bool = False,
    fabric: bool = False,
    fabric_ttl=None,
    fabric_addr=None,
):
    """Run every driver; returns ``{driver_name: seconds}`` wall-clock timings.

    ``jobs`` (when given) becomes the process-wide default worker count,
    so every driver's grid fans out without per-driver plumbing.  Each
    driver runs under a sweep checkpoint (see the module docstring);
    ``resume=True`` skips drivers whose completion is journaled and whose
    output files are still present.  ``fabric=True`` claims each driver
    through a fabric lease first, letting concurrent copies of this
    script shard the driver list (see the module docstring).
    """
    if jobs is not None:
        set_default_jobs(jobs)
    out_dir.mkdir(parents=True, exist_ok=True)
    hint = resume_hint(scale, out_dir, jobs)
    parent_name = f"run-all-s{scale:g}"
    parent = SweepCheckpoint(parent_name).open(meta={"resume_cmd": hint})
    store = worker_id = None
    if fabric:
        from repro.core.fabric import FabricTransportError, resolve_ttl
        from repro.core.fabric_net import make_lease_store

        if fabric_ttl is None and "REPRO_FABRIC_TTL_S" not in os.environ:
            fabric_ttl = 900.0  # drivers run for minutes, not seconds
        fabric_ttl = resolve_ttl(fabric_ttl)
        # --fabric-addr / REPRO_FABRIC_ADDR selects the TCP broker
        # transport so copies of this script on *other machines* share
        # the driver list; otherwise the filesystem store as before.
        store = make_lease_store(parent_name, addr=fabric_addr)
        worker_id = f"runall-{os.getpid()}"
    combined = {}
    timings = {}
    t_start = time.time()

    def _already_done(name, txt_path, json_path):
        return (
            f"driver:{name}" in parent.completed_keys()
            and txt_path.is_file()
            and json_path.is_file()
        )

    def _run_one(name, driver, txt_path, json_path):
        t0 = time.time()
        # Point-level journal for this driver: a kill mid-driver resumes
        # from the last completed simulation point, not the last driver.
        cp = SweepCheckpoint(f"{parent_name}/{name}").open(meta={"resume_cmd": hint})
        set_default_checkpoint(cp)
        try:
            out = driver(scale)
        finally:
            set_default_checkpoint(None)
        dt = time.time() - t0
        timings[name] = dt
        text = out.table_str()
        txt_path.write_text(text + "\n")
        json_path.write_text(json.dumps(out.data, indent=2, default=str) + "\n")
        # The files are an export format; the columnar store is the
        # durable history (`python -m repro report <name>` re-renders
        # this exact table without re-simulating).
        ingest_artifact_quietly(
            name, text, data=out.data, scale=scale, title=out.title,
            source="run_all",
        )
        combined[name] = text
        parent.record(f"driver:{name}", "done")
        if not quiet:
            print(
                f"[{time.time() - t_start:7.1f}s] {name:<22} done in {dt:6.1f}s",
                flush=True,
            )

    pending = dict(DRIVERS)
    while pending:
        progressed = False
        parent.refresh()
        for name, driver in list(pending.items()):
            txt_path = out_dir / f"{name}.txt"
            json_path = out_dir / f"{name}.json"
            if (resume or fabric) and _already_done(name, txt_path, json_path):
                # Finished by a previous run (--resume) or by a peer
                # fabric process; fold its output in without recomputing.
                del pending[name]
                timings.setdefault(name, 0.0)
                combined[name] = txt_path.read_text().rstrip("\n")
                if not quiet:
                    print(
                        f"[{time.time() - t_start:7.1f}s] {name:<22} "
                        "already complete (resumed)",
                        flush=True,
                    )
                continue
            if store is not None:
                try:
                    lease = store.claim(
                        f"driver-{name}", worker_id, ttl_s=fabric_ttl
                    )
                except FabricTransportError as exc:
                    # Broker gone: degrade once to the filesystem store
                    # and keep going — peers on this machine still
                    # coordinate, remote ones re-join when it returns.
                    from repro.core.fabric import LeaseStore

                    store = LeaseStore(parent_name)
                    print(
                        f"fabric: broker unreachable ({exc}); continuing "
                        f"with the filesystem lease store at {store.dir}",
                        flush=True,
                    )
                    lease = store.claim(
                        f"driver-{name}", worker_id, ttl_s=fabric_ttl
                    )
                if lease is None:
                    current = store.read_lease(f"driver-{name}")
                    if current is None or current.status == "held":
                        continue  # a live peer holds it; revisit next pass
                    # Terminal lease but this --out lacks the exports (a
                    # previous run wrote to a different directory): the
                    # points replay from the run cache, so re-render
                    # without a lease instead of waiting forever on a
                    # driver nobody will release again.
                    _run_one(name, driver, txt_path, json_path)
                else:
                    try:
                        _run_one(name, driver, txt_path, json_path)
                    finally:
                        status = "done" if name in combined else "failed"
                        try:
                            store.release(lease, status)
                        except FabricTransportError:
                            pass  # lease expires; the journal stands
            else:
                _run_one(name, driver, txt_path, json_path)
            del pending[name]
            progressed = True
        if pending and not progressed:
            if store is None:
                raise RuntimeError(
                    f"drivers did not converge: {sorted(pending)}"
                )  # pragma: no cover - defensive; serial mode never loops
            # Every remaining driver is leased by a live peer: wait for
            # them to finish (journal) or die/stall (lease reclaimable).
            time.sleep(2.0)
    (out_dir / "ALL.txt").write_text(
        "\n\n\n".join(combined[name] for name, _ in DRIVERS) + "\n"
    )
    parent.finalize("complete")
    return timings


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "legacy",
        nargs="*",
        default=[],
        metavar="SCALE [OUT_DIR]",
        help="legacy positional form: scale followed by output directory",
    )
    parser.add_argument("--scale", type=float, default=None, help="problem-size multiplier")
    parser.add_argument("--out", type=pathlib.Path, default=None, help="output directory")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per simulation grid (default: REPRO_JOBS or 1; "
        "0 = all cores)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip drivers journaled complete by a previous (interrupted) "
        "regeneration at this scale; finished points replay from the run cache",
    )
    parser.add_argument(
        "--fabric",
        action="store_true",
        help="claim each driver through a fabric lease "
        "(results/.fabric/run-all-s<scale>/) so concurrent copies of this "
        "script pointed at the same --out split the driver list; crashed or "
        "stalled copies lose their leases and survivors steal the work",
    )
    parser.add_argument(
        "--fabric-ttl",
        type=float,
        default=None,
        help="driver lease TTL in seconds for --fabric "
        "(default: $REPRO_FABRIC_TTL_S, else 900; validated to sane bounds)",
    )
    parser.add_argument(
        "--fabric-addr",
        default=os.environ.get("REPRO_FABRIC_ADDR"),
        metavar="HOST:PORT",
        help="lease broker address for --fabric so copies of this script on "
        "other machines share the driver list (default: $REPRO_FABRIC_ADDR, "
        "else the local filesystem store; see `repro fabric broker`)",
    )
    parser.add_argument(
        "--fidelity",
        choices=("des", "analytic", "auto"),
        default=None,
        help="serving model for every grid point: 'des' (reference "
        "simulator, default), 'analytic' (closed-form fast model), or "
        "'auto' (DES-calibrated fast model with recorded error bounds; "
        "see repro.core.fidelity)",
    )
    args = parser.parse_args(argv)
    if args.scale is None and args.legacy:
        args.scale = float(args.legacy[0])
    if args.out is None and len(args.legacy) > 1:
        args.out = pathlib.Path(args.legacy[1])
    if args.scale is None:
        args.scale = 1.0
    if args.out is None:
        args.out = pathlib.Path("results")
    return args


def main(argv=None) -> None:
    args = parse_args(argv)
    jobs = resolve_jobs(args.jobs)
    if args.fidelity is not None:
        set_default_fidelity(args.fidelity)
    t0 = time.time()
    try:
        run_all(
            args.scale,
            args.out,
            jobs=jobs,
            resume=args.resume,
            fabric=args.fabric,
            fabric_ttl=args.fabric_ttl,
            fabric_addr=args.fabric_addr,
        )
    except ValueError as exc:
        # e.g. a misconfigured --fabric-ttl / REPRO_FABRIC_TTL_S: one
        # friendly line instead of a silently broken sweep (or traceback).
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except SweepInterrupted as exc:
        print(
            f"\ninterrupted — completed points are journaled; "
            f"resume with: {exc.hint}",
            file=sys.stderr,
        )
        raise SystemExit(130)
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — resume with: {resume_hint(args.scale, args.out, jobs)}",
            file=sys.stderr,
        )
        raise SystemExit(130)
    print(
        f"all experiments written to {args.out}/ "
        f"({time.time() - t0:.1f}s, jobs={jobs})"
    )


if __name__ == "__main__":
    main()
