#!/usr/bin/env python
"""Regenerate every table/figure at a chosen scale and archive the output.

Used to produce the numbers recorded in EXPERIMENTS.md::

    python scripts/run_all_experiments.py 1.0 results/
"""

import json
import pathlib
import sys
import time

from repro.experiments import (
    ablations,
    breakdowns,
    correlations,
    figure01_speedups,
    figure03_messages,
    figure04_bytes,
    figure05_host_overhead,
    figure06_ni_occupancy,
    figure07_io_bandwidth,
    figure09_interrupt,
    figure11_aurc_occupancy,
    figure12_page_size,
    figure13_clustering,
    interrupt_variants,
    microbench,
    multi_ni,
    problem_size,
    protocol_processing,
    table02_events,
    table03_slowdowns,
    table04_attribution,
    table04_speedups,
)

DRIVERS = [
    ("figure01", lambda s: figure01_speedups.run(scale=s)),
    ("table02", lambda s: table02_events.run(scale=s)),
    ("figure03", lambda s: figure03_messages.run(scale=s)),
    ("figure04", lambda s: figure04_bytes.run(scale=s)),
    ("figure05", lambda s: figure05_host_overhead.run(scale=s)),
    ("figure05b", lambda s: correlations.run_host_vs_messages(scale=s)),
    ("figure06", lambda s: figure06_ni_occupancy.run(scale=s)),
    ("figure07", lambda s: figure07_io_bandwidth.run(scale=s)),
    ("figure08", lambda s: correlations.run_bandwidth_vs_bytes(scale=s)),
    ("figure09", lambda s: figure09_interrupt.run(scale=s)),
    ("figure10", lambda s: correlations.run_interrupt_vs_fetches(scale=s)),
    ("figure11", lambda s: figure11_aurc_occupancy.run(scale=s)),
    ("table03", lambda s: table03_slowdowns.run(scale=s)),
    ("table04", lambda s: table04_speedups.run(scale=s)),
    ("figure12", lambda s: figure12_page_size.run(scale=s)),
    ("figure13", lambda s: figure13_clustering.run(scale=s)),
    ("section5-uninode", lambda s: interrupt_variants.run_uniprocessor_nodes(scale=s)),
    ("section5-roundrobin", lambda s: interrupt_variants.run_round_robin(scale=s)),
    ("section7-attribution", lambda s: table04_attribution.run(scale=s)),
    ("section10-processing", lambda s: protocol_processing.run(scale=s)),
    ("section10-multini", lambda s: multi_ni.run(scale=s)),
    ("problem-size", lambda s: problem_size.run(scale=s)),
    ("ablations", lambda s: ablations.run(scale=s)),
    ("breakdowns", lambda s: breakdowns.run(scale=s)),
    ("microbench", lambda s: microbench.run()),
]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    out_dir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "results")
    out_dir.mkdir(parents=True, exist_ok=True)
    combined = []
    t_start = time.time()
    for name, driver in DRIVERS:
        t0 = time.time()
        out = driver(scale)
        dt = time.time() - t0
        text = out.table_str()
        (out_dir / f"{name}.txt").write_text(text + "\n")
        (out_dir / f"{name}.json").write_text(
            json.dumps(out.data, indent=2, default=str) + "\n"
        )
        combined.append(text)
        print(f"[{time.time() - t_start:7.1f}s] {name:<22} done in {dt:6.1f}s", flush=True)
    (out_dir / "ALL.txt").write_text("\n\n\n".join(combined) + "\n")
    print(f"all experiments written to {out_dir}/")


if __name__ == "__main__":
    main()
