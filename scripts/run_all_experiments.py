#!/usr/bin/env python
"""Regenerate every table/figure at a chosen scale and archive the output.

Used to produce the numbers recorded in EXPERIMENTS.md::

    python scripts/run_all_experiments.py --scale 1.0 --out results/ --jobs 0

``--jobs N`` fans each driver's simulation grid over N worker processes
(0 = one per core); repeated points — e.g. the achievable baseline that
almost every driver needs — are simulated once and then served from the
persistent disk cache (``results/.runcache/``), so a re-run after an
interrupted regeneration, or a second regeneration at the same scale, is
mostly cache hits.  The legacy positional form
``run_all_experiments.py 1.0 results/`` still works.
"""

import argparse
import json
import pathlib
import time

from repro.core.executor import resolve_jobs, set_default_jobs
from repro.experiments import (
    ablations,
    breakdowns,
    correlations,
    figure01_speedups,
    figure03_messages,
    figure04_bytes,
    figure05_host_overhead,
    figure06_ni_occupancy,
    figure07_io_bandwidth,
    figure09_interrupt,
    figure11_aurc_occupancy,
    figure12_page_size,
    figure13_clustering,
    interrupt_variants,
    microbench,
    multi_ni,
    problem_size,
    protocol_processing,
    reliability,
    table02_events,
    table03_slowdowns,
    table04_attribution,
    table04_speedups,
)

DRIVERS = [
    ("figure01", lambda s: figure01_speedups.run(scale=s)),
    ("table02", lambda s: table02_events.run(scale=s)),
    ("figure03", lambda s: figure03_messages.run(scale=s)),
    ("figure04", lambda s: figure04_bytes.run(scale=s)),
    ("figure05", lambda s: figure05_host_overhead.run(scale=s)),
    ("figure05b", lambda s: correlations.run_host_vs_messages(scale=s)),
    ("figure06", lambda s: figure06_ni_occupancy.run(scale=s)),
    ("figure07", lambda s: figure07_io_bandwidth.run(scale=s)),
    ("figure08", lambda s: correlations.run_bandwidth_vs_bytes(scale=s)),
    ("figure09", lambda s: figure09_interrupt.run(scale=s)),
    ("figure10", lambda s: correlations.run_interrupt_vs_fetches(scale=s)),
    ("figure11", lambda s: figure11_aurc_occupancy.run(scale=s)),
    ("table03", lambda s: table03_slowdowns.run(scale=s)),
    ("table04", lambda s: table04_speedups.run(scale=s)),
    ("figure12", lambda s: figure12_page_size.run(scale=s)),
    ("figure13", lambda s: figure13_clustering.run(scale=s)),
    ("section5-uninode", lambda s: interrupt_variants.run_uniprocessor_nodes(scale=s)),
    ("section5-roundrobin", lambda s: interrupt_variants.run_round_robin(scale=s)),
    ("section7-attribution", lambda s: table04_attribution.run(scale=s)),
    ("section10-processing", lambda s: protocol_processing.run(scale=s)),
    ("section10-multini", lambda s: multi_ni.run(scale=s)),
    ("problem-size", lambda s: problem_size.run(scale=s)),
    ("reliability", lambda s: reliability.run(scale=s)),
    ("ablations", lambda s: ablations.run(scale=s)),
    ("breakdowns", lambda s: breakdowns.run(scale=s)),
    ("microbench", lambda s: microbench.run()),
]


def run_all(scale: float, out_dir: pathlib.Path, jobs=None, quiet: bool = False):
    """Run every driver; returns ``{driver_name: seconds}`` wall-clock timings.

    ``jobs`` (when given) becomes the process-wide default worker count,
    so every driver's grid fans out without per-driver plumbing.
    """
    if jobs is not None:
        set_default_jobs(jobs)
    out_dir.mkdir(parents=True, exist_ok=True)
    combined = []
    timings = {}
    t_start = time.time()
    for name, driver in DRIVERS:
        t0 = time.time()
        out = driver(scale)
        dt = time.time() - t0
        timings[name] = dt
        text = out.table_str()
        (out_dir / f"{name}.txt").write_text(text + "\n")
        (out_dir / f"{name}.json").write_text(
            json.dumps(out.data, indent=2, default=str) + "\n"
        )
        combined.append(text)
        if not quiet:
            print(
                f"[{time.time() - t_start:7.1f}s] {name:<22} done in {dt:6.1f}s",
                flush=True,
            )
    (out_dir / "ALL.txt").write_text("\n\n\n".join(combined) + "\n")
    return timings


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "legacy",
        nargs="*",
        default=[],
        metavar="SCALE [OUT_DIR]",
        help="legacy positional form: scale followed by output directory",
    )
    parser.add_argument("--scale", type=float, default=None, help="problem-size multiplier")
    parser.add_argument("--out", type=pathlib.Path, default=None, help="output directory")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per simulation grid (default: REPRO_JOBS or 1; "
        "0 = all cores)",
    )
    args = parser.parse_args(argv)
    if args.scale is None and args.legacy:
        args.scale = float(args.legacy[0])
    if args.out is None and len(args.legacy) > 1:
        args.out = pathlib.Path(args.legacy[1])
    if args.scale is None:
        args.scale = 1.0
    if args.out is None:
        args.out = pathlib.Path("results")
    return args


def main(argv=None) -> None:
    args = parse_args(argv)
    jobs = resolve_jobs(args.jobs)
    t0 = time.time()
    run_all(args.scale, args.out, jobs=jobs)
    print(
        f"all experiments written to {args.out}/ "
        f"({time.time() - t0:.1f}s, jobs={jobs})"
    )


if __name__ == "__main__":
    main()
