#!/usr/bin/env python
"""CI smoke test for the fault-injection / reliable-delivery path.

Runs a small grid with packet drops enabled and asserts that

* every point completes (no hangs, no watchdog trips at sane settings),
* the reliability machinery actually engaged (messages were lost and
  retransmitted — a grid that never dropped anything proves nothing),
* fault-free runs carry no reliability meta keys (zero cost when off), and
* the same fault seed reproduces bit-identical faulty results.

Exit status 0 on success; any assertion failure is a CI failure.

Usage::

    PYTHONPATH=src python scripts/fault_smoke.py [--scale 0.05] [--jobs 2]
"""

import argparse
import sys

from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from repro.core.executor import run_points
from repro.net.faults import FaultParams


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--jobs", type=int, default=None)
    args = parser.parse_args(argv)

    base = ClusterConfig()
    faulty = base.replace(
        faults=FaultParams(drop_prob=0.02, dup_prob=0.01, retry_timeout=50_000)
    )
    apps = ("fft", "lu")
    protocols = ("hlrc", "aurc")
    grid = [
        (app, args.scale, cfg.replace(protocol=proto))
        for app in apps
        for proto in protocols
        for cfg in (base, faulty)
    ]
    results = run_points(grid, jobs=args.jobs)  # strict: any failure raises
    by_point = dict(zip(grid, results))

    total_retx = 0
    total_lost = 0
    for (app, _, cfg), r in by_point.items():
        tag = f"{app}/{cfg.protocol}/{'faulty' if cfg.faults.enabled else 'clean'}"
        print(
            f"  {tag:<22} total={r.total_cycles:>12} "
            f"retx={int(r.meta.get('retransmits', 0)):>5} "
            f"lost={int(r.meta.get('messages_lost', 0)):>5}"
        )
        if cfg.faults.enabled:
            total_retx += int(r.meta.get("retransmits", 0))
            total_lost += int(r.meta.get("messages_lost", 0))
        else:
            assert "retransmits" not in r.meta, (
                f"{tag}: fault-free run grew reliability meta keys"
            )
    assert total_lost > 0, "fault injection never dropped a message"
    assert total_retx > 0, "no retransmissions despite dropped messages"

    # Determinism: re-simulating one faulty point from scratch (bypassing
    # every cache layer) must be bit-identical.
    app, scale, cfg = next(p for p in grid if p[2].faults.enabled)
    trace = get_app(app, page_size=cfg.comm.page_size, scale=scale, seed=cfg.seed)
    again = run_simulation(trace, cfg)
    r = by_point[(app, scale, cfg)]
    assert (again.total_cycles, again.meta) == (r.total_cycles, r.meta), (
        "faulty run is not deterministic for a fixed fault seed"
    )

    print(
        f"fault smoke OK: {len(grid)} points, "
        f"{total_lost} drops recovered via {total_retx} retransmissions"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
