#!/usr/bin/env python
"""Golden-snapshot regression gate for the simulator.

Simulated behaviour is deterministic: for a pinned seed, every run of the
same configuration must produce bit-identical cycle counts, time
breakdowns and protocol counters.  This script freezes that contract as a
committed snapshot (``scripts/golden_snapshot.json``) of SHA-256 digests
over a small grid — both protocols, two kernels, faults on and off — and
CI replays the grid against the snapshot on every push.

Any model change that shifts even one cycle anywhere in the grid flips a
digest and fails the gate, forcing the change to be *blessed* explicitly
(and the snapshot diff reviewed) instead of drifting in silently.

Usage::

    PYTHONPATH=src python scripts/golden_regression.py --check   # CI gate
    PYTHONPATH=src python scripts/golden_regression.py --bless   # regenerate
    PYTHONPATH=src python scripts/golden_regression.py --check --perturb 1
        # demo: one extra handler cycle must fail the gate

``--bless`` output is deterministic (sorted keys, no timestamps), so
blessing an unchanged tree is a no-op diff.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import pathlib
import sys

from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from repro.core.runcache import MODEL_VERSION
from repro.net.faults import FaultParams

SNAPSHOT_PATH = pathlib.Path(__file__).resolve().parent / "golden_snapshot.json"

#: pinned grid — small enough for CI, wide enough to cover both protocol
#: state machines, two sharing patterns and the reliability path.  radix
#: (fine-grained scattered writes) is the point where hlrc and aurc
#: actually diverge; fft covers the coarse-grained common case.
SCALE = 0.05
APPS = ("fft", "radix")
PROTOCOLS = ("hlrc", "aurc")
FAULTY = FaultParams(drop_prob=0.02, dup_prob=0.01, retry_timeout=50_000)


def grid_points(perturb: int = 0):
    """Yield ``(tag, app, config)`` for every snapshot point."""
    base = ClusterConfig()
    if perturb:
        base = base.replace(
            arch=dataclasses.replace(
                base.arch,
                handler_base_cycles=base.arch.handler_base_cycles + perturb,
            )
        )
    for app in APPS:
        for proto in PROTOCOLS:
            for faults in (FaultParams(), FAULTY):
                cfg = base.replace(protocol=proto, faults=faults)
                tag = f"{app}/{proto}/{'faulty' if faults.enabled else 'clean'}"
                yield tag, app, cfg
    # The collectives subsystem's default must be invisible: an explicit
    # collective="flat" is dataclass-equal to the default config, so this
    # point's digest must be byte-identical to fft/hlrc/clean — check()
    # cross-checks that, proving the default path never moved.
    yield (
        "fft/hlrc/flat-collective",
        "fft",
        base.replace(protocol="hlrc", collective="flat"),
    )


def observe(result) -> dict:
    """The deterministic observable surface of one run.

    Everything here is integer cycle/event counts — no wall-clock, no
    floats derived from host behaviour — so the digest is stable across
    machines and Python builds.
    """
    counters = dataclasses.asdict(result.counters)
    return {
        "total_cycles": result.total_cycles,
        "serial_cycles": result.serial_cycles,
        "time_breakdown": result.time_breakdown(),
        "counters": counters,
        # verify.* keys describe the oracle bookkeeping, not simulated
        # behaviour — excluded so --verify replays the very same digests
        "meta": {
            k: result.meta[k]
            for k in sorted(result.meta)
            if not k.startswith("verify.")
        },
    }


def digest(observable: dict) -> str:
    canonical = json.dumps(observable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_grid(perturb: int = 0, verify: bool = False) -> "tuple[dict, list]":
    """Run the grid; returns (points, oracle_failures).

    With ``verify`` the happens-before oracle rides along on every point:
    digests must still match the snapshot (verification is passive) and
    any :class:`ConsistencyViolation` is collected as a failure.
    """
    points = {}
    oracle_failures = []
    for tag, app, cfg in grid_points(perturb):
        if verify:
            cfg = cfg.replace(verify=True)
        trace = get_app(
            app, page_size=cfg.comm.page_size, scale=SCALE, seed=cfg.seed
        )
        result = run_simulation(trace, cfg)
        obs = observe(result)
        points[tag] = {
            "digest": digest(obs),
            "total_cycles": obs["total_cycles"],
        }
        suffix = ""
        if verify:
            n_viol = len(result.violations)
            suffix = (
                f"  verify={int(result.meta['verify.events'])}ev/"
                f"{n_viol}viol"
            )
            if n_viol:
                oracle_failures.append((tag, result.violations))
        print(
            f"  {tag:<18} total={obs['total_cycles']:>12}  "
            f"{points[tag]['digest'][:16]}{suffix}"
        )
    return points, oracle_failures


def bless(points: dict) -> None:
    snapshot = {
        "model_version": MODEL_VERSION,
        "scale": SCALE,
        "points": points,
    }
    SNAPSHOT_PATH.write_text(
        json.dumps(snapshot, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    print(f"blessed {len(points)} points -> {SNAPSHOT_PATH}")


def check(points: dict) -> int:
    if not SNAPSHOT_PATH.exists():
        print(f"FAIL: no snapshot at {SNAPSHOT_PATH}; run --bless first")
        return 1
    snapshot = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    failures = []
    if snapshot.get("model_version") != MODEL_VERSION:
        failures.append(
            f"model_version mismatch: snapshot={snapshot.get('model_version')} "
            f"code={MODEL_VERSION} (re-bless after reviewing the change)"
        )
    golden = snapshot.get("points", {})
    for tag in sorted(set(golden) | set(points)):
        if tag not in golden:
            failures.append(f"{tag}: new grid point not in snapshot")
        elif tag not in points:
            failures.append(f"{tag}: snapshot point missing from grid")
        elif points[tag]["digest"] != golden[tag]["digest"]:
            failures.append(
                f"{tag}: digest changed "
                f"(cycles {golden[tag]['total_cycles']} -> "
                f"{points[tag]['total_cycles']})"
            )
    flat = points.get("fft/hlrc/flat-collective")
    clean = points.get("fft/hlrc/clean")
    if flat and clean and flat["digest"] != clean["digest"]:
        failures.append(
            "fft/hlrc/flat-collective: explicit collective='flat' digest "
            "differs from the default-config digest — the default barrier "
            "path moved"
        )
    if failures:
        print("golden regression FAILED:")
        for f in failures:
            print(f"  - {f}")
        print(
            "If the behaviour change is intentional, regenerate with "
            "--bless and commit the snapshot diff."
        )
        return 1
    print(f"golden regression OK: {len(points)} points match the snapshot")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true", help="compare against snapshot")
    mode.add_argument("--bless", action="store_true", help="regenerate snapshot")
    parser.add_argument(
        "--perturb",
        type=int,
        default=0,
        metavar="CYCLES",
        help="add CYCLES to handler_base_cycles (sensitivity demo; a "
        "single cycle must fail --check)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also run the happens-before conformance oracle on every "
        "point (digests must be unchanged; any violation fails)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="append the grid's digests to this result store's "
        "golden_history table (deduplicated per model version + digest), "
        "so `repro report diff --model-version A B` can compare versions "
        "without any checkout of the old code",
    )
    args = parser.parse_args(argv)
    points, oracle_failures = run_grid(perturb=args.perturb, verify=args.verify)
    if args.store and not args.perturb:
        from repro.core.store import ResultStore

        added = ResultStore(args.store).append_golden(
            points, source="golden_regression"
        )
        print(f"golden history: {added} new digest row(s) -> {args.store}")
    if oracle_failures:
        print("conformance oracle FAILED:")
        for tag, violations in oracle_failures:
            for v in violations[:5]:
                print(f"  - {tag}: {v}")
            if len(violations) > 5:
                print(f"  - {tag}: … and {len(violations) - 5} more")
        return 1
    if args.bless:
        bless(points)
        return 0
    return check(points)


if __name__ == "__main__":
    sys.exit(main())
