#!/usr/bin/env python
"""Benchmark the full experiment grid: serial vs parallel vs warm cache.

Times three regenerations of every experiment driver via
``scripts/run_all_experiments.py`` in subprocesses (so each phase gets a
clean process and an explicitly controlled ``REPRO_CACHE_DIR``):

1. **serial cold** — ``--jobs 1``, empty disk cache;
2. **parallel cold** — ``--jobs N``, empty disk cache;
3. **parallel warm** — ``--jobs N`` again over the phase-2 cache, so
   every point is a disk hit.

Writes the timings (plus the speedup ratios the acceptance criteria
track) to ``BENCH_sweep.json``::

    python scripts/bench_sweep.py --scale 0.05 --jobs 2 --out BENCH_sweep.json
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _run_phase(name, scale, jobs, cache_dir, out_dir):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_JOBS", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        str(REPO_ROOT / "scripts" / "run_all_experiments.py"),
        "--scale",
        str(scale),
        "--out",
        str(out_dir),
        "--jobs",
        str(jobs),
    ]
    t0 = time.time()
    subprocess.run(cmd, check=True, env=env, stdout=subprocess.DEVNULL)
    dt = time.time() - t0
    print(f"{name:<14} jobs={jobs:<3} {dt:7.1f}s", flush=True)
    return dt


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument(
        "--jobs", type=int, default=0, help="parallel worker count (0 = all cores)"
    )
    parser.add_argument("--out", type=pathlib.Path, default=REPO_ROOT / "BENCH_sweep.json")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        tmp = pathlib.Path(tmp)
        serial = _run_phase(
            "serial-cold", args.scale, 1, tmp / "cache-serial", tmp / "out-serial"
        )
        parallel = _run_phase(
            "parallel-cold", args.scale, jobs, tmp / "cache-par", tmp / "out-par"
        )
        warm = _run_phase(
            "parallel-warm", args.scale, jobs, tmp / "cache-par", tmp / "out-warm"
        )

    record = {
        "scale": args.scale,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_cold_s": round(serial, 2),
        "parallel_cold_s": round(parallel, 2),
        "parallel_warm_s": round(warm, 2),
        "parallel_speedup_vs_serial": round(serial / parallel, 2),
        "warm_speedup_vs_cold": round(parallel / warm, 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
