#!/usr/bin/env python
"""Microbenchmark the DES hot loop: heap vs calendar-queue dispatch cost.

Three engines run the same synthetic event storms:

``heap_reference``
    the seed engine's inner loop (peek-then-pop on a ``(when, seq)``
    heap, a ``math.ceil`` float round-trip on every ``schedule``, and
    per-event deadline/budget/tracer branches);
``heap_fastpath``
    the optimized dispatch loop (bound locals, fused no-tracer branch)
    still backed by a single ``(when, seq)`` binary heap — isolates the
    dispatch-path specialization from the queue data structure;
``calendar``
    the shipping :class:`repro.sim.engine.Simulator` — the same fast
    dispatch loop over the bucketed calendar queue (O(1) insert into an
    existing cycle bucket, one heap op per *distinct* timestamp).

Two storms cover the event-mix extremes: ``chains`` is self-rescheduling
timers with staggered periods (mostly distinct timestamps — the
calendar's worst case), ``bursty`` is barrier-style wakeups where many
events share a cycle (the calendar's best case and the SVM workloads'
common case).

Writes ``benchmarks/output/BENCH_engine.json``::

    PYTHONPATH=src python scripts/bench_engine.py --events 300000

The top-level ``speedup`` (calendar vs the heap reference on the chains
storm, the conservative comparison) gates CI at >= 1.5x.
"""

import argparse
import heapq
import json
import math
import pathlib
import time

from repro.sim.engine import Simulator
from repro.sim.tracing import NullTracer

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "output"


class ReferenceSimulator:
    """The seed engine's scheduling/dispatch loop, kept for comparison."""

    def __init__(self) -> None:
        self.now = 0
        self._heap = []
        self._seq = 0
        self._dispatched = 0
        self.tracer = NullTracer()

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise ValueError(delay)
        when_i = int(math.ceil(self.now + delay))
        heapq.heappush(self._heap, (when_i, self._seq, fn, args))
        self._seq += 1

    def run(self, until=None, max_events=None):
        dispatched_before = self._dispatched
        trace = self.tracer
        while self._heap:
            when, seq, fn, args = self._heap[0]
            if until is not None and when > until:
                self.now = int(until)
                break
            heapq.heappop(self._heap)
            self.now = when
            self._dispatched += 1
            if max_events is not None and self._dispatched - dispatched_before > max_events:
                raise ValueError("max_events")
            if trace.enabled:
                trace.record(when, "dispatch", repr(fn))
            fn(*args)
        return self._dispatched - dispatched_before


class HeapSimulator:
    """The optimized dispatch loop backed by a plain ``(when, seq)`` heap.

    Identical fast-path treatment to the shipping engine (bound locals,
    integer-delay fast path, no per-event branches), but every event is
    an individual heap entry — the difference between this and
    ``calendar`` is purely the queue data structure.
    """

    def __init__(self) -> None:
        self.now = 0
        self._heap = []
        self._seq = 0
        self._dispatched = 0

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise ValueError(delay)
        when = self.now + (delay if type(delay) is int else int(math.ceil(delay)))
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    def run(self):
        heap = self._heap
        pop = heapq.heappop
        dispatched = self._dispatched
        dispatched_before = dispatched
        while heap:
            when, _, fn, args = pop(heap)
            self.now = when
            dispatched += 1
            fn(*args)
        self._dispatched = dispatched
        return dispatched - dispatched_before


def storm_chains(sim, chains: int, events_per_chain: int) -> int:
    """Self-rescheduling timer chains with staggered periods."""
    remaining = [events_per_chain] * chains

    def tick(i):
        remaining[i] -= 1
        if remaining[i]:
            sim.schedule(7 + i, tick, i)

    for i in range(chains):
        sim.schedule(i, tick, i)
    return sim.run()


def storm_bursty(sim, chains: int, events_per_chain: int) -> int:
    """Barrier-style bursts: every chain wakes on the same cycle."""
    remaining = [events_per_chain] * chains

    def tick(i):
        remaining[i] -= 1
        if remaining[i]:
            sim.schedule(13, tick, i)

    for i in range(chains):
        sim.schedule(0, tick, i)
    return sim.run()


STORMS = {"chains": storm_chains, "bursty": storm_bursty}


def bench(make_sim, storm, chains, events_per_chain, repeats):
    best = float("inf")
    for _ in range(repeats):
        sim = make_sim()
        t0 = time.perf_counter()
        n = storm(sim, chains, events_per_chain)
        dt = time.perf_counter() - t0
        best = min(best, dt / n)
    return n, best


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=300_000, help="events per run")
    parser.add_argument("--chains", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=OUTPUT / "BENCH_engine.json",
        help="output path (default: the committed benchmarks/output/ file; "
        "point elsewhere to compare a fresh run against the baseline)",
    )
    args = parser.parse_args(argv)
    per_chain = max(1, args.events // args.chains)

    engines = {
        "heap_reference": ReferenceSimulator,
        "heap_fastpath": HeapSimulator,
        "calendar": Simulator,
    }
    results = {}
    for storm_name, storm in STORMS.items():
        per_engine = {}
        for engine_name, make_sim in engines.items():
            n, sec = bench(make_sim, storm, args.chains, per_chain, args.repeats)
            per_engine[engine_name] = {
                "ns_per_event": round(sec * 1e9, 1),
                "events_per_s": round(1 / sec),
            }
        per_engine["calendar_vs_heap_reference"] = round(
            per_engine["heap_reference"]["ns_per_event"]
            / per_engine["calendar"]["ns_per_event"],
            3,
        )
        per_engine["calendar_vs_heap_fastpath"] = round(
            per_engine["heap_fastpath"]["ns_per_event"]
            / per_engine["calendar"]["ns_per_event"],
            3,
        )
        results[storm_name] = per_engine

    chains = results["chains"]
    record = {
        "events_per_run": n,
        "storms": results,
        # legacy flat keys (bench_compare / older tooling read these)
        "reference_ns_per_event": chains["heap_reference"]["ns_per_event"],
        "optimized_ns_per_event": chains["calendar"]["ns_per_event"],
        "speedup": chains["calendar_vs_heap_reference"],
        "reference_events_per_s": chains["heap_reference"]["events_per_s"],
        "optimized_events_per_s": chains["calendar"]["events_per_s"],
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    if record["speedup"] < 1.0:
        raise SystemExit("engine fast path is SLOWER than the reference loop")


if __name__ == "__main__":
    main()
