#!/usr/bin/env python
"""Microbenchmark the DES hot loop: per-event dispatch cost.

Compares the optimized :class:`repro.sim.engine.Simulator` against a
reference engine that replicates the pre-optimization inner loop (peek
then pop, a ``math.ceil`` float round-trip on every ``schedule``, and
per-event deadline/budget/tracer branches).  Both run the same synthetic
event storm — a set of self-rescheduling timer chains, the engine's
worst case because every dispatch immediately schedules again — so the
difference is pure dispatch overhead.

Writes ``benchmarks/output/BENCH_engine.json``::

    PYTHONPATH=src python scripts/bench_engine.py --events 300000
"""

import argparse
import heapq
import json
import math
import pathlib
import time

from repro.sim.engine import Simulator
from repro.sim.tracing import NullTracer

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "output"


class ReferenceSimulator:
    """The seed engine's scheduling/dispatch loop, kept for comparison."""

    def __init__(self) -> None:
        self.now = 0
        self._heap = []
        self._seq = 0
        self._dispatched = 0
        self.tracer = NullTracer()

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise ValueError(delay)
        when_i = int(math.ceil(self.now + delay))
        heapq.heappush(self._heap, (when_i, self._seq, fn, args))
        self._seq += 1

    def run(self, until=None, max_events=None):
        dispatched_before = self._dispatched
        trace = self.tracer
        while self._heap:
            when, seq, fn, args = self._heap[0]
            if until is not None and when > until:
                self.now = int(until)
                break
            heapq.heappop(self._heap)
            self.now = when
            self._dispatched += 1
            if max_events is not None and self._dispatched - dispatched_before > max_events:
                raise ValueError("max_events")
            if trace.enabled:
                trace.record(when, "dispatch", repr(fn))
            fn(*args)
        return self._dispatched - dispatched_before


def storm(sim, chains: int, events_per_chain: int) -> int:
    """Self-rescheduling timer chains; returns total events dispatched."""
    remaining = [events_per_chain] * chains

    def tick(i):
        remaining[i] -= 1
        if remaining[i]:
            sim.schedule(7 + i, tick, i)

    for i in range(chains):
        sim.schedule(i, tick, i)
    return sim.run()


def bench(make_sim, chains, events_per_chain, repeats):
    best = float("inf")
    for _ in range(repeats):
        sim = make_sim()
        t0 = time.perf_counter()
        n = storm(sim, chains, events_per_chain)
        dt = time.perf_counter() - t0
        best = min(best, dt / n)
    return n, best


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=300_000, help="events per run")
    parser.add_argument("--chains", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    per_chain = max(1, args.events // args.chains)

    n, ref = bench(ReferenceSimulator, args.chains, per_chain, args.repeats)
    _, opt = bench(Simulator, args.chains, per_chain, args.repeats)

    record = {
        "events_per_run": n,
        "reference_ns_per_event": round(ref * 1e9, 1),
        "optimized_ns_per_event": round(opt * 1e9, 1),
        "speedup": round(ref / opt, 3),
        "reference_events_per_s": round(1 / ref),
        "optimized_events_per_s": round(1 / opt),
    }
    OUTPUT.mkdir(exist_ok=True)
    (OUTPUT / "BENCH_engine.json").write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    if record["speedup"] < 1.0:
        raise SystemExit("engine fast path is SLOWER than the reference loop")


if __name__ == "__main__":
    main()
